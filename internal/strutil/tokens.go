package strutil

import (
	"strings"
	"unicode"
)

// Tokenize splits a schema element name into lowercase word tokens. It
// splits on punctuation and whitespace, on camelCase boundaries, and between
// letters and digits, so "customerID", "customer_id" and "Customer ID" all
// tokenize to [customer id].
func Tokenize(s string) []string {
	var tokens []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			tokens = append(tokens, strings.ToLower(cur.String()))
			cur.Reset()
		}
	}
	runes := []rune(s)
	for i, r := range runes {
		switch {
		case unicode.IsLetter(r):
			if i > 0 && unicode.IsUpper(r) {
				prev := runes[i-1]
				nextLower := i+1 < len(runes) && unicode.IsLower(runes[i+1])
				if unicode.IsLower(prev) || (unicode.IsUpper(prev) && nextLower) {
					flush()
				}
			}
			if i > 0 && unicode.IsDigit(runes[i-1]) {
				flush()
			}
			cur.WriteRune(r)
		case unicode.IsDigit(r):
			if i > 0 && unicode.IsLetter(runes[i-1]) {
				flush()
			}
			cur.WriteRune(r)
		default:
			flush()
		}
	}
	flush()
	return tokens
}

// NGrams returns the set of character n-grams of s (with boundary padding
// using '#'), as a map for set operations.
func NGrams(s string, n int) map[string]struct{} {
	out := make(map[string]struct{})
	if n <= 0 {
		return out
	}
	padded := strings.Repeat("#", n-1) + strings.ToLower(s) + strings.Repeat("#", n-1)
	r := []rune(padded)
	for i := 0; i+n <= len(r); i++ {
		out[string(r[i:i+n])] = struct{}{}
	}
	return out
}

// TrigramSim is the Dice similarity of the trigram sets of a and b.
func TrigramSim(a, b string) float64 {
	return DiceSets(NGrams(a, 3), NGrams(b, 3))
}

// JaccardSets returns |A∩B| / |A∪B|; two empty sets score 1.
func JaccardSets(a, b map[string]struct{}) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	inter := 0
	small, large := a, b
	if len(b) < len(a) {
		small, large = b, a
	}
	for k := range small {
		if _, ok := large[k]; ok {
			inter++
		}
	}
	return float64(inter) / float64(len(a)+len(b)-inter)
}

// DiceSets returns 2|A∩B| / (|A|+|B|); two empty sets score 1.
func DiceSets(a, b map[string]struct{}) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	inter := 0
	small, large := a, b
	if len(b) < len(a) {
		small, large = b, a
	}
	for k := range small {
		if _, ok := large[k]; ok {
			inter++
		}
	}
	return 2 * float64(inter) / float64(len(a)+len(b))
}

// OverlapSets returns |A∩B| / min(|A|,|B|) (containment-style overlap).
func OverlapSets(a, b map[string]struct{}) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	inter := 0
	small, large := a, b
	if len(b) < len(a) {
		small, large = b, a
	}
	for k := range small {
		if _, ok := large[k]; ok {
			inter++
		}
	}
	return float64(inter) / float64(len(small))
}

// ToSet converts a token slice to a set.
func ToSet(tokens []string) map[string]struct{} {
	out := make(map[string]struct{}, len(tokens))
	for _, t := range tokens {
		out[t] = struct{}{}
	}
	return out
}

// TokenJaccard is the Jaccard similarity of the token sets of a and b.
func TokenJaccard(a, b string) float64 {
	return JaccardSets(ToSet(Tokenize(a)), ToSet(Tokenize(b)))
}

// NameSim is the blended schema-name similarity used as a default across
// matchers: the maximum of token Jaccard and Levenshtein similarity over
// normalized names, so both token reordering and small typos score high.
func NameSim(a, b string) float64 {
	na, nb := Normalize(a), Normalize(b)
	if na == nb {
		return 1
	}
	tj := TokenJaccard(a, b)
	lv := LevenshteinSim(na, nb)
	if tj > lv {
		return tj
	}
	return lv
}

// DropVowels removes non-leading vowels from every token of s, mimicking the
// "drop vowels" schema-noise rule (customer → cstmr).
func DropVowels(s string) string {
	var b strings.Builder
	prevBoundary := true
	for _, r := range s {
		isVowel := strings.ContainsRune("aeiouAEIOU", r)
		if isVowel && !prevBoundary {
			continue
		}
		b.WriteRune(r)
		prevBoundary = !unicode.IsLetter(r)
	}
	return b.String()
}

// Abbreviate keeps the first letter of each token plus up to keep-1
// following consonants ("customer_name", 3 → "cus_nam" style truncation).
func Abbreviate(s string, keep int) string {
	if keep < 1 {
		keep = 1
	}
	tokens := Tokenize(s)
	out := make([]string, 0, len(tokens))
	for _, t := range tokens {
		if len(t) > keep {
			t = t[:keep]
		}
		out = append(out, t)
	}
	return strings.Join(out, "_")
}

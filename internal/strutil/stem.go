package strutil

import "strings"

// Stem reduces an English word to its stem with a Porter-style suffix
// stripper (steps 1a/1b plus the common derivational suffixes). Cupid's
// linguistic matcher stems tokens before thesaurus lookup so that
// "customers"/"customer" and "shipped"/"ship" compare equal, matching the
// original's WordNet-backed normalization.
func Stem(word string) string {
	w := strings.ToLower(word)
	if len(w) <= 2 {
		return w
	}

	// Step 1a: plurals.
	switch {
	case strings.HasSuffix(w, "sses"):
		w = w[:len(w)-2]
	case strings.HasSuffix(w, "ies"):
		w = w[:len(w)-2]
	case strings.HasSuffix(w, "ss"):
		// keep
	case strings.HasSuffix(w, "s") && len(w) > 3:
		w = w[:len(w)-1]
	}

	// Step 1b: -ed / -ing with restoration rules.
	switch {
	case strings.HasSuffix(w, "eed"):
		if measure(w[:len(w)-3]) > 0 {
			w = w[:len(w)-1]
		}
	case strings.HasSuffix(w, "ed") && hasVowel(w[:len(w)-2]):
		w = restore(w[:len(w)-2])
	case strings.HasSuffix(w, "ing") && hasVowel(w[:len(w)-3]):
		w = restore(w[:len(w)-3])
	}

	// Step 2-ish: long derivational suffixes need measure > 0 (Porter step
	// 2/3); short ones need measure > 1 (Porter step 4) so that roots like
	// "order" keep their -er.
	w = stripSuffixes(w, 0, longSuffixes)
	w = stripSuffixes(w, 1, shortSuffixes)

	// Final -e drop (Porter step 5a): only when measure allows and the stem
	// does not end consonant-vowel-consonant (the *o condition), so
	// "relate" keeps its e.
	if strings.HasSuffix(w, "e") {
		stemPart := w[:len(w)-1]
		if measure(stemPart) > 1 && !endsCVC(stemPart) {
			w = stemPart
		}
	}
	return w
}

type suffixRule struct{ from, to string }

var longSuffixes = []suffixRule{
	{"ational", "ate"}, {"ization", "ize"}, {"fulness", "ful"},
	{"ousness", "ous"}, {"iveness", "ive"}, {"biliti", "ble"},
	{"entli", "ent"}, {"ation", "ate"}, {"alism", "al"},
	{"aliti", "al"}, {"iviti", "ive"},
}

var shortSuffixes = []suffixRule{
	{"ement", ""}, {"ance", ""}, {"ence", ""}, {"ness", ""},
	{"ment", ""}, {"tion", "t"}, {"sion", "s"},
	{"er", ""}, {"ly", ""}, {"al", ""},
}

// stripSuffixes applies the first matching rule whose remaining stem has
// measure greater than minMeasure.
func stripSuffixes(w string, minMeasure int, rules []suffixRule) string {
	for _, sfx := range rules {
		if strings.HasSuffix(w, sfx.from) {
			stemPart := w[:len(w)-len(sfx.from)]
			if measure(stemPart) > minMeasure {
				return stemPart + sfx.to
			}
			return w
		}
	}
	return w
}

// restore repairs stems after -ed/-ing removal: "hop(p)" → "hop",
// "bak" → "bake" style endings.
func restore(w string) string {
	switch {
	case strings.HasSuffix(w, "at") || strings.HasSuffix(w, "bl") || strings.HasSuffix(w, "iz"):
		return w + "e"
	case len(w) >= 2 && w[len(w)-1] == w[len(w)-2] && !strings.ContainsRune("lsz", rune(w[len(w)-1])):
		return w[:len(w)-1]
	default:
		return w
	}
}

// endsCVC reports Porter's *o condition: the word ends
// consonant-vowel-consonant where the final consonant is not w, x or y.
func endsCVC(w string) bool {
	n := len(w)
	if n < 3 {
		return false
	}
	if isVowelAt(w, n-1) || !isVowelAt(w, n-2) || isVowelAt(w, n-3) {
		return false
	}
	return !strings.ContainsRune("wxy", rune(w[n-1]))
}

func isVowelAt(w string, i int) bool {
	c := w[i]
	if strings.ContainsRune("aeiou", rune(c)) {
		return true
	}
	// y is a vowel when preceded by a consonant
	return c == 'y' && i > 0 && !isVowelAt(w, i-1)
}

func hasVowel(w string) bool {
	for i := range w {
		if isVowelAt(w, i) {
			return true
		}
	}
	return false
}

// measure counts VC sequences (Porter's m).
func measure(w string) int {
	m := 0
	prevVowel := false
	for i := range w {
		v := isVowelAt(w, i)
		if prevVowel && !v {
			m++
		}
		prevVowel = v
	}
	return m
}

// StemTokens stems each token.
func StemTokens(tokens []string) []string {
	out := make([]string, len(tokens))
	for i, t := range tokens {
		out[i] = Stem(t)
	}
	return out
}

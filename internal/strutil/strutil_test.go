package strutil

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "", 3},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"abc", "abc", 0},
		{"日本語", "日本", 1},
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLevenshteinSim(t *testing.T) {
	if got := LevenshteinSim("", ""); got != 1 {
		t.Errorf("empty/empty = %v", got)
	}
	if got := LevenshteinSim("abcd", "abce"); got != 0.75 {
		t.Errorf("abcd/abce = %v", got)
	}
}

func TestDamerau(t *testing.T) {
	if got := DamerauLevenshtein("ca", "ac"); got != 1 {
		t.Errorf("transposition = %d, want 1", got)
	}
	if got := DamerauLevenshtein("abc", "abc"); got != 0 {
		t.Errorf("equal = %d", got)
	}
	if got, lev := DamerauLevenshtein("abcdef", "badcfe"), Levenshtein("abcdef", "badcfe"); got >= lev+1 {
		t.Errorf("damerau %d should be <= levenshtein %d", got, lev)
	}
	if DamerauLevenshtein("", "xy") != 2 || DamerauLevenshtein("xy", "") != 2 {
		t.Error("empty cases")
	}
}

func TestJaro(t *testing.T) {
	if got := Jaro("martha", "marhta"); got < 0.94 || got > 0.95 {
		t.Errorf("Jaro(martha,marhta) = %v, want ~0.944", got)
	}
	if got := Jaro("", ""); got != 1 {
		t.Errorf("empty = %v", got)
	}
	if got := Jaro("a", ""); got != 0 {
		t.Errorf("one empty = %v", got)
	}
	if got := Jaro("abc", "xyz"); got != 0 {
		t.Errorf("disjoint = %v", got)
	}
}

func TestJaroWinkler(t *testing.T) {
	jw := JaroWinkler("dixon", "dicksonx")
	if jw < 0.81 || jw > 0.82 {
		t.Errorf("JaroWinkler(dixon,dicksonx) = %v, want ~0.813", jw)
	}
	if JaroWinkler("prefix_a", "prefix_b") <= Jaro("prefix_a", "prefix_b") {
		t.Error("winkler prefix boost missing")
	}
}

func TestLongestCommonSubstring(t *testing.T) {
	if got := LongestCommonSubstring("customer_name", "name_customer"); got != 8 {
		t.Errorf("LCSstr = %d, want 8 (customer)", got)
	}
	if got := LongestCommonSubstring("", "abc"); got != 0 {
		t.Errorf("empty = %d", got)
	}
}

func TestPrefixSuffix(t *testing.T) {
	if got := CommonPrefixLen("customer_id", "customer_nm"); got != 9 {
		t.Errorf("prefix = %d", got)
	}
	if got := CommonSuffixLen("my_id", "your_id"); got != 3 {
		t.Errorf("suffix = %d", got)
	}
}

func TestNormalize(t *testing.T) {
	cases := map[string]string{
		"  Customer ID ":   "customer_id",
		"P_Code":           "p_code",
		"addr.":            "addr",
		"--x--":            "x",
		"Crème Brûlée":     "crème_brûlée",
		"multi   spaces":   "multi_spaces",
		"trail_punct!!!":   "trail_punct",
		"":                 "",
		"ALLCAPS":          "allcaps",
		"snake_case_name_": "snake_case_name",
	}
	for in, want := range cases {
		if got := Normalize(in); got != want {
			t.Errorf("Normalize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"customerID", []string{"customer", "id"}},
		{"Customer_ID", []string{"customer", "id"}},
		{"customer id", []string{"customer", "id"}},
		{"HTTPServer2Port", []string{"http", "server", "2", "port"}},
		{"P_Code", []string{"p", "code"}},
		{"", nil},
		{"a1b", []string{"a", "1", "b"}},
		{"XMLHttpRequest", []string{"xml", "http", "request"}},
	}
	for _, c := range cases {
		if got := Tokenize(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestNGrams(t *testing.T) {
	g := NGrams("ab", 2)
	want := map[string]struct{}{"#a": {}, "ab": {}, "b#": {}}
	if !reflect.DeepEqual(g, want) {
		t.Errorf("NGrams = %v", g)
	}
	if len(NGrams("ab", 0)) != 0 {
		t.Error("n<=0 should be empty")
	}
}

func TestSetSims(t *testing.T) {
	a := ToSet([]string{"x", "y"})
	b := ToSet([]string{"y", "z"})
	if got := JaccardSets(a, b); got != 1.0/3 {
		t.Errorf("Jaccard = %v", got)
	}
	if got := DiceSets(a, b); got != 0.5 {
		t.Errorf("Dice = %v", got)
	}
	if got := OverlapSets(a, b); got != 0.5 {
		t.Errorf("Overlap = %v", got)
	}
	empty := map[string]struct{}{}
	if JaccardSets(empty, empty) != 1 || DiceSets(empty, empty) != 1 || OverlapSets(empty, empty) != 1 {
		t.Error("empty/empty should be 1")
	}
	if JaccardSets(a, empty) != 0 || DiceSets(a, empty) != 0 || OverlapSets(a, empty) != 0 {
		t.Error("nonempty/empty should be 0")
	}
}

func TestNameSim(t *testing.T) {
	if got := NameSim("Customer ID", "customer_id"); got != 1 {
		t.Errorf("normalized-equal should be 1, got %v", got)
	}
	if got := NameSim("id_customer", "customer_id"); got != 1 {
		t.Errorf("token-reorder should be 1, got %v", got)
	}
	if got := NameSim("address", "adress"); got < 0.8 {
		t.Errorf("typo should score high, got %v", got)
	}
	if got := NameSim("price", "zebra"); got > 0.4 {
		t.Errorf("unrelated should score low, got %v", got)
	}
}

func TestDropVowels(t *testing.T) {
	if got := DropVowels("customer"); got != "cstmr" {
		t.Errorf("DropVowels(customer) = %q", got)
	}
	if got := DropVowels("id"); got != "id" {
		t.Errorf("leading vowel kept per-token boundary: %q", got)
	}
	if got := DropVowels("owner_email"); got != "ownr_eml" {
		t.Errorf("DropVowels(owner_email) = %q", got)
	}
}

func TestAbbreviate(t *testing.T) {
	if got := Abbreviate("customer_name", 3); got != "cus_nam" {
		t.Errorf("Abbreviate = %q", got)
	}
	if got := Abbreviate("id", 3); got != "id" {
		t.Errorf("short token = %q", got)
	}
	if got := Abbreviate("alpha beta", 0); got != "a_b" {
		t.Errorf("keep<1 clamps to 1: %q", got)
	}
}

func TestTrigramSim(t *testing.T) {
	if got := TrigramSim("night", "night"); got != 1 {
		t.Errorf("identical = %v", got)
	}
	if a, b := TrigramSim("night", "nacht"), TrigramSim("night", "zzz"); a <= b {
		t.Errorf("related %v should beat unrelated %v", a, b)
	}
}

// Metric properties of Levenshtein: symmetry, identity, triangle inequality.
func TestLevenshteinMetricProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	randStr := func() string {
		n := rng.Intn(8)
		b := make([]byte, n)
		for i := range b {
			b[i] = byte('a' + rng.Intn(4))
		}
		return string(b)
	}
	for i := 0; i < 300; i++ {
		a, b, c := randStr(), randStr(), randStr()
		if Levenshtein(a, b) != Levenshtein(b, a) {
			t.Fatalf("symmetry violated: %q %q", a, b)
		}
		if Levenshtein(a, a) != 0 {
			t.Fatalf("identity violated: %q", a)
		}
		if Levenshtein(a, c) > Levenshtein(a, b)+Levenshtein(b, c) {
			t.Fatalf("triangle violated: %q %q %q", a, b, c)
		}
	}
}

// Property: all similarity functions stay within [0,1].
func TestSimilarityRangeProperty(t *testing.T) {
	f := func(a, b string) bool {
		for _, v := range []float64{
			LevenshteinSim(a, b), Jaro(a, b), JaroWinkler(a, b),
			TokenJaccard(a, b), NameSim(a, b), TrigramSim(a, b),
		} {
			if v < 0 || v > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Jaro of identical strings is 1.
func TestJaroIdentityProperty(t *testing.T) {
	f := func(a string) bool { return Jaro(a, a) == 1 }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

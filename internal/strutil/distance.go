// Package strutil implements the string-similarity primitives shared by
// Valentine's matchers: edit distances, token-set similarities, n-gram
// measures, and a schema-aware tokenizer.
//
// All similarity functions return values in [0,1] where 1 means identical;
// all distance functions return non-negative counts.
package strutil

import (
	"strings"
	"unicode"
)

// Levenshtein returns the edit distance between a and b (unit costs for
// insert, delete, substitute), computed over runes.
func Levenshtein(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = min3(cur[j-1]+1, prev[j]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

// LevenshteinSim is 1 − Levenshtein/max(len); two empty strings score 1.
func LevenshteinSim(a, b string) float64 {
	la, lb := len([]rune(a)), len([]rune(b))
	if la == 0 && lb == 0 {
		return 1
	}
	m := la
	if lb > m {
		m = lb
	}
	return 1 - float64(Levenshtein(a, b))/float64(m)
}

// DamerauLevenshtein additionally counts adjacent transposition as one edit
// (restricted Damerau).
func DamerauLevenshtein(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	n, m := len(ra), len(rb)
	if n == 0 {
		return m
	}
	if m == 0 {
		return n
	}
	d := make([][]int, n+1)
	for i := range d {
		d[i] = make([]int, m+1)
		d[i][0] = i
	}
	for j := 0; j <= m; j++ {
		d[0][j] = j
	}
	for i := 1; i <= n; i++ {
		for j := 1; j <= m; j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			d[i][j] = min3(d[i-1][j]+1, d[i][j-1]+1, d[i-1][j-1]+cost)
			if i > 1 && j > 1 && ra[i-1] == rb[j-2] && ra[i-2] == rb[j-1] {
				if t := d[i-2][j-2] + 1; t < d[i][j] {
					d[i][j] = t
				}
			}
		}
	}
	return d[n][m]
}

// Jaro returns the Jaro similarity of a and b.
func Jaro(a, b string) float64 {
	ra, rb := []rune(a), []rune(b)
	la, lb := len(ra), len(rb)
	if la == 0 && lb == 0 {
		return 1
	}
	if la == 0 || lb == 0 {
		return 0
	}
	window := la
	if lb > window {
		window = lb
	}
	window = window/2 - 1
	if window < 0 {
		window = 0
	}
	matchA := make([]bool, la)
	matchB := make([]bool, lb)
	matches := 0
	for i := 0; i < la; i++ {
		lo := i - window
		if lo < 0 {
			lo = 0
		}
		hi := i + window + 1
		if hi > lb {
			hi = lb
		}
		for j := lo; j < hi; j++ {
			if matchB[j] || ra[i] != rb[j] {
				continue
			}
			matchA[i], matchB[j] = true, true
			matches++
			break
		}
	}
	if matches == 0 {
		return 0
	}
	transpositions := 0
	j := 0
	for i := 0; i < la; i++ {
		if !matchA[i] {
			continue
		}
		for !matchB[j] {
			j++
		}
		if ra[i] != rb[j] {
			transpositions++
		}
		j++
	}
	m := float64(matches)
	return (m/float64(la) + m/float64(lb) + (m-float64(transpositions)/2)/m) / 3
}

// JaroWinkler boosts Jaro by shared-prefix length (standard p=0.1, max 4).
func JaroWinkler(a, b string) float64 {
	j := Jaro(a, b)
	prefix := 0
	ra, rb := []rune(a), []rune(b)
	for prefix < len(ra) && prefix < len(rb) && prefix < 4 && ra[prefix] == rb[prefix] {
		prefix++
	}
	return j + float64(prefix)*0.1*(1-j)
}

// LongestCommonSubstring returns the length of the longest common substring.
func LongestCommonSubstring(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 || len(rb) == 0 {
		return 0
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	best := 0
	for i := 1; i <= len(ra); i++ {
		for j := 1; j <= len(rb); j++ {
			if ra[i-1] == rb[j-1] {
				cur[j] = prev[j-1] + 1
				if cur[j] > best {
					best = cur[j]
				}
			} else {
				cur[j] = 0
			}
		}
		prev, cur = cur, prev
		for j := range cur {
			cur[j] = 0
		}
	}
	return best
}

// CommonPrefixLen returns the length of the shared rune prefix.
func CommonPrefixLen(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	i := 0
	for i < len(ra) && i < len(rb) && ra[i] == rb[i] {
		i++
	}
	return i
}

// CommonSuffixLen returns the length of the shared rune suffix.
func CommonSuffixLen(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	i := 0
	for i < len(ra) && i < len(rb) && ra[len(ra)-1-i] == rb[len(rb)-1-i] {
		i++
	}
	return i
}

// EqualFold reports case-insensitive equality after trimming space.
func EqualFold(a, b string) bool {
	return strings.EqualFold(strings.TrimSpace(a), strings.TrimSpace(b))
}

// Normalize lowercases, trims, and collapses internal whitespace and
// punctuation runs to single underscores — the canonical form used when
// comparing schema element names.
func Normalize(s string) string {
	var b strings.Builder
	lastSep := true
	for _, r := range strings.TrimSpace(s) {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			b.WriteRune(unicode.ToLower(r))
			lastSep = false
		default:
			if !lastSep {
				b.WriteByte('_')
				lastSep = true
			}
		}
	}
	return strings.TrimSuffix(b.String(), "_")
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

package strutil

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestStem(t *testing.T) {
	cases := map[string]string{
		"customers":  "custom", // Porter strips -er at m>1
		"caresses":   "caress",
		"ponies":     "poni",
		"caress":     "caress",
		"cats":       "cat",
		"agreed":     "agree",
		"plastered":  "plaster",
		"motoring":   "motor",
		"hopping":    "hop",
		"sized":      "size",
		"relational": "relate",
		"orders":     "order", // m("ord")=1 keeps the -er
		"id":         "id",
		"a":          "a",
		"":           "",
	}
	for in, want := range cases {
		if got := Stem(in); got != want {
			t.Errorf("Stem(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestStemEquatesInflections(t *testing.T) {
	groups := [][]string{
		{"ship", "ships", "shipped", "shipping"},
		{"order", "orders", "ordered", "ordering"},
	}
	for _, g := range groups {
		base := Stem(g[0])
		for _, w := range g[1:] {
			if Stem(w) != base {
				t.Errorf("Stem(%q) = %q, want %q (same as %q)", w, Stem(w), base, g[0])
			}
		}
	}
}

func TestStemTokens(t *testing.T) {
	got := StemTokens([]string{"cats", "orders"})
	if !reflect.DeepEqual(got, []string{"cat", "order"}) {
		t.Fatalf("StemTokens = %v", got)
	}
}

func TestMeasure(t *testing.T) {
	cases := map[string]int{"tr": 0, "ee": 0, "tree": 0, "trouble": 1, "oats": 1, "oaten": 2, "private": 2}
	for in, want := range cases {
		if got := measure(in); got != want {
			t.Errorf("measure(%q) = %d, want %d", in, got, want)
		}
	}
}

// Property: stemming is idempotent-ish for already-stemmed short words and
// never panics or grows the word by more than one rune.
func TestStemProperties(t *testing.T) {
	f := func(w string) bool {
		s := Stem(w)
		return len(s) <= len(w)+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

package planner

import (
	"context"
	"sort"

	"valentine/internal/core"
	"valentine/internal/engine"
	"valentine/internal/profile"
	"valentine/internal/table"
)

// Candidate is one table entering the discovery re-rank phase.
type Candidate struct {
	// Name is the candidate's display name (the CSV path in the discover
	// CLI); it is also the deterministic tiebreak key.
	Name string
	// Profile is the candidate's (possibly cold) table profile. The
	// cascade deliberately does not warm it up front: bounds touch only
	// the cheap cached signals, and full profiling costs are paid lazily,
	// only by candidates that survive into exact scoring.
	Profile *profile.TableProfile
}

// Ranked is one re-ranked discovery result.
type Ranked struct {
	Name  string
	Score float64
	// Best is the best single correspondence backing the score (zero when
	// the matcher emitted no matches).
	Best core.Match
}

// RerankResult is the outcome of a discovery re-rank.
type RerankResult struct {
	// Ranked holds the fully scored candidates, score-descending
	// (name-ascending among ties), truncated to k when k > 0.
	Ranked []Ranked
	// Errs maps candidate names to non-context matcher errors; errored
	// candidates are dropped from the ranking.
	Errs map[string]error
	// Pruned counts candidates cut by the bound-vs-cutoff check; Skipped
	// counts candidates left untouched by a budget expiry.
	Pruned, Skipped int
	// BestEffort reports that a budget expired mid-cascade and Ranked
	// covers only the candidates scored before it.
	BestEffort bool
}

// Rerank runs the cost-based cascade over discovery candidates: every
// candidate is bounded with the matcher's cheap admissible bound
// (core.ScoreBound), and the full matcher runs only on candidates whose
// bound reaches the current top-k cutoff. With no budget on ctx the
// ranking is bit-identical to RerankFull's truncated to k; an
// approximation budget attached via core.WithEpsilon relaxes the cutoff by
// ε with the planner's ε guarantee (every returned score within ε of the
// true top-k).
//
// On a context error Rerank returns the partial result alongside the
// error (best-effort payload); callers classify it with
// core.IsBudgetExpiry.
func Rerank(ctx context.Context, m core.Matcher, query *profile.TableProfile, cands []Candidate, mode string, k int) (*RerankResult, error) {
	return rerank(ctx, m, query, cands, mode, k, true)
}

// RerankFull is the full-fidelity reference: every candidate is scored
// with the full matcher, no bounding, no pruning. It is the -cascade=off
// escape hatch and the conformance oracle.
func RerankFull(ctx context.Context, m core.Matcher, query *profile.TableProfile, cands []Candidate, mode string, k int) (*RerankResult, error) {
	return rerank(ctx, m, query, cands, mode, k, false)
}

func rerank(ctx context.Context, m core.Matcher, query *profile.TableProfile, cands []Candidate, mode string, k int, cascade bool) (*RerankResult, error) {
	best := make([]core.Match, len(cands))
	spec := Spec{
		N: len(cands),
		Score: func(ctx context.Context, i int) (float64, error) {
			matches, err := core.MatchProfilesWithContext(ctx, m, query, cands[i].Profile)
			if err != nil {
				return 0, err
			}
			s, b := DiscoveryScore(matches, mode, query.Table())
			best[i] = b
			return s, nil
		},
		Tie: func(i, j int) bool { return cands[i].Name < cands[j].Name },
	}
	if cascade {
		spec.K = k
		spec.Epsilon = core.EpsilonFrom(ctx)
		spec.Label = m.Name()
		spec.Bound = func(i int) float64 {
			return core.ScoreBound(m, query, cands[i].Profile)
		}
	}
	res, err := TopK(ctx, spec)
	out := &RerankResult{
		Pruned:     res.Pruned,
		Skipped:    res.Skipped,
		BestEffort: err != nil,
	}
	for i := range cands {
		if e := res.Err[i]; e != nil {
			if out.Errs == nil {
				out.Errs = make(map[string]error)
			}
			out.Errs[cands[i].Name] = e
			continue
		}
		if !res.Done[i] {
			continue
		}
		out.Ranked = append(out.Ranked, Ranked{Name: cands[i].Name, Score: res.Score[i], Best: best[i]})
	}
	engine.StatsFrom(ctx).Timed(engine.StageRank, func() {
		sort.Slice(out.Ranked, func(a, b int) bool {
			if out.Ranked[a].Score != out.Ranked[b].Score {
				return out.Ranked[a].Score > out.Ranked[b].Score
			}
			return out.Ranked[a].Name < out.Ranked[b].Name
		})
	})
	if k > 0 && len(out.Ranked) > k {
		out.Ranked = out.Ranked[:k]
	}
	return out, err
}

// DiscoveryScore converts a ranked match list into one candidate score:
// joinability is the best single correspondence (one good join column
// suffices); unionability is the mean of each query column's best match
// (a union needs every query column covered). Both aggregates are bounded
// by the best per-pair score, which is what makes per-matcher score
// bounds admissible for discovery re-ranking too.
func DiscoveryScore(matches []core.Match, mode string, query *table.Table) (float64, core.Match) {
	if len(matches) == 0 {
		return 0, core.Match{}
	}
	if mode == "join" {
		return matches[0].Score, matches[0]
	}
	bestPer := make(map[string]float64, query.NumColumns())
	for _, m := range matches {
		if m.Score > bestPer[m.SourceColumn] {
			bestPer[m.SourceColumn] = m.Score
		}
	}
	sum := 0.0
	for _, c := range query.ColumnNames() {
		sum += bestPer[c]
	}
	return sum / float64(query.NumColumns()), matches[0]
}

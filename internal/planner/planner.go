// Package planner implements the cost-based matcher cascade: a
// bound-then-refine top-k query planner over the engine's worker pool.
//
// The cascade scores every candidate with cheap admissible upper bounds
// first (interned value overlap, name tokens, type coverage — all cached
// in profile.Store, computed without touching the expensive matcher), then
// refines candidates in bound-descending order against a concurrent top-k
// cutoff: a candidate whose bound falls strictly below the current kth
// exact score is pruned without ever running the full matcher.
//
// # Exactness
//
// Pruning is lossless by construction. The cutoff is always the kth-best
// among exact scores computed so far, which can only grow toward (and
// never exceed) the kth-best exact score of the full candidate set. A
// pruned candidate therefore satisfies
//
//	exact(i) <= bound(i) < cutoff <= final kth exact score
//
// so it is strictly outside the final top-k no matter how the concurrent
// refinement interleaves. Candidates tied with the kth score are never
// pruned (the comparison is strict), so the downstream deterministic sort
// (score desc, name asc) breaks ties exactly as the full-fidelity path
// does: with no budget, the cascade top-k is bit-identical to the
// full-fidelity top-k. The conformance tests fuzz this contract under
// -race.
//
// # ε-bounded approximation
//
// Spec.Epsilon > 0 relaxes the prune check to
//
//	bound(i) < cutoff + ε
//
// which prunes strictly more than the exact cascade while keeping a
// provable guarantee: every returned score is within ε of the true top-k.
// The argument mirrors the exactness one. Let c be the final cutoff (the
// kth-best among scores actually refined) and t_k the true kth-best exact
// score. Every pruned candidate satisfies exact(i) <= bound(i) < c + ε.
// Suppose c < t_k − ε. Then c + ε < t_k <= bound(j) for every candidate j
// whose exact score reaches t_k, so none of those k candidates was pruned —
// all were refined, forcing c >= t_k, a contradiction. Hence c >= t_k − ε,
// and since the returned list is the top-k of the refined scores, its kth
// entry is exactly c — so every returned score is >= c >= t_k − ε. With
// ε = 0 the check reduces to the strict exact comparison, so the exact
// cascade is literally the ε = 0 special case and stays bit-identical to
// full fidelity. Callers thread ε from the request boundary via
// core.WithEpsilon; boundaries validate it with core.ValidateEpsilon
// (finite, in [0, 1)).
//
// # Budgets
//
// A per-query latency budget is a sub-deadline on the context
// (core.BudgetContext). When it expires mid-cascade, refinement stops
// between units and the planner returns the partial result alongside the
// context error; callers use core.IsBudgetExpiry to distinguish
// best-effort-so-far (budget spent, request alive) from a dead request.
package planner

import (
	"context"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"valentine/internal/engine"
)

// Cutoff is a concurrent top-k score tracker: a min-heap of the k best
// exact scores offered so far, exposing the kth best as a lock-free
// threshold. The threshold is -Inf until k scores have been offered and is
// monotonically non-decreasing — both properties the planner's exactness
// argument relies on.
type Cutoff struct {
	thr atomic.Uint64 // math.Float64bits of the current threshold
	mu  sync.Mutex
	k   int
	h   []float64 // min-heap of the k best scores
}

// NewCutoff returns a tracker for the k best scores. k <= 0 disables the
// cutoff entirely: the threshold stays -Inf forever, so nothing prunes.
func NewCutoff(k int) *Cutoff {
	c := &Cutoff{k: k}
	c.thr.Store(math.Float64bits(math.Inf(-1)))
	return c
}

// Threshold returns the current kth-best score, or -Inf while fewer than k
// scores have been offered.
func (c *Cutoff) Threshold() float64 {
	return math.Float64frombits(c.thr.Load())
}

// Offer records one exact score. NaN scores are ignored.
func (c *Cutoff) Offer(s float64) {
	if c.k <= 0 || math.IsNaN(s) {
		return
	}
	// The threshold is -Inf until the heap is full, so s <= threshold
	// implies a full heap whose minimum s cannot raise — skip the lock.
	if s <= c.Threshold() {
		return
	}
	c.mu.Lock()
	if len(c.h) < c.k {
		c.h = append(c.h, s)
		c.siftUp(len(c.h) - 1)
	} else if s > c.h[0] {
		c.h[0] = s
		c.siftDown(0)
	}
	if len(c.h) == c.k {
		c.thr.Store(math.Float64bits(c.h[0]))
	}
	c.mu.Unlock()
}

func (c *Cutoff) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if c.h[p] <= c.h[i] {
			break
		}
		c.h[p], c.h[i] = c.h[i], c.h[p]
		i = p
	}
}

func (c *Cutoff) siftDown(i int) {
	n := len(c.h)
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && c.h[l] < c.h[min] {
			min = l
		}
		if r < n && c.h[r] < c.h[min] {
			min = r
		}
		if min == i {
			return
		}
		c.h[i], c.h[min] = c.h[min], c.h[i]
		i = min
	}
}

// Spec describes one cascade run over N candidates.
type Spec struct {
	// N is the candidate count.
	N int
	// K is the top-k target. K <= 0 disables pruning (every candidate is
	// fully scored) — the full-fidelity reference mode.
	K int
	// Bound returns candidate i's admissible upper bound. It must be cheap
	// and must never underestimate the exact score (see the package doc).
	// Nil means "no bound available": every candidate is treated as +Inf
	// and nothing prunes. NaN bounds are treated as +Inf (conservative).
	Bound func(i int) float64
	// Score computes candidate i's exact score. It must be safe for
	// concurrent calls. Context errors abort the cascade; other errors are
	// recorded per candidate and drop only that candidate.
	Score func(ctx context.Context, i int) (float64, error)
	// Tie orders candidates with equal bounds in the refinement queue
	// (cosmetic — it affects scheduling, never the result). Nil means
	// index order.
	Tie func(i, j int) bool
	// Epsilon relaxes the prune check to bound < cutoff + Epsilon: strictly
	// more pruning, every returned score guaranteed within Epsilon of the
	// true top-k (see the package doc). 0 (and NaN/negative, sanitized) is
	// the exact cascade.
	Epsilon float64
	// Label attributes this run's bounded/pruned/refined counters to one
	// matcher in the engine stats breakdown (Stats.Matcher). Empty means
	// "aggregate only".
	Label string
}

// Result is a cascade run's outcome. When TopK also returns a context
// error, the Result holds the partial state at expiry (the best-effort
// payload).
type Result struct {
	// Score[i] is candidate i's exact score, valid iff Done[i].
	Score []float64
	// Done[i] reports whether candidate i was fully scored.
	Done []bool
	// Err[i] is candidate i's non-context scoring error, if any (the
	// candidate is dropped, not retried).
	Err []error
	// Pruned counts candidates cut by the bound-vs-cutoff check.
	Pruned int
	// Skipped counts candidates neither scored nor pruned — nonzero only
	// when the context expired mid-cascade.
	Skipped int
}

// TopK runs the bound-then-refine cascade. On a context error it returns
// both the partial Result and the error; the caller decides whether that
// is a best-effort answer (budget expiry, core.IsBudgetExpiry) or a
// failure. Engine stats, when attached to ctx, record the bound/score
// stage walls and the candidates/bounded/pruned/scored counters.
func TopK(ctx context.Context, spec Spec) (*Result, error) {
	stats := engine.StatsFrom(ctx)
	mstats := stats.Matcher(spec.Label)
	workers := engine.OptionsFrom(ctx).Workers()
	eps := spec.Epsilon
	if math.IsNaN(eps) || eps < 0 {
		eps = 0
	}
	res := &Result{
		Score: make([]float64, spec.N),
		Done:  make([]bool, spec.N),
		Err:   make([]error, spec.N),
	}
	stats.AddCandidates(int64(spec.N))

	// Tier 0: admissible bounds for every candidate, in parallel. Bounds
	// read only cached profile signals, so this tier is cheap even for
	// candidates that end up pruned.
	bounds := make([]float64, spec.N)
	cascade := spec.K > 0 && spec.Bound != nil
	if cascade {
		start := time.Now()
		err := engine.Map(ctx, workers, spec.N, func(i int) error {
			b := spec.Bound(i)
			if math.IsNaN(b) {
				b = math.Inf(1)
			}
			bounds[i] = b
			return nil
		})
		stats.Observe(engine.StageBound, time.Since(start))
		stats.AddBounded(int64(spec.N))
		mstats.AddBounded(int64(spec.N))
		if err != nil {
			res.Skipped = spec.N
			return res, err
		}
	} else {
		for i := range bounds {
			bounds[i] = math.Inf(1)
		}
	}

	// Refinement order: bound-descending, so the candidates most likely to
	// hold top-k scores are refined first and the cutoff rises as fast as
	// possible. The order affects only how much work is saved, never the
	// result.
	order := make([]int, spec.N)
	for i := range order {
		order[i] = i
	}
	if cascade {
		sort.SliceStable(order, func(a, b int) bool {
			ia, ib := order[a], order[b]
			if bounds[ia] != bounds[ib] {
				return bounds[ia] > bounds[ib]
			}
			if spec.Tie != nil {
				return spec.Tie(ia, ib)
			}
			return ia < ib
		})
	}

	cutoff := NewCutoff(spec.K)
	var pruned, scored atomic.Int64
	start := time.Now()
	mapErr := engine.Map(ctx, workers, spec.N, func(pos int) error {
		i := order[pos]
		// The prune check is strict: a candidate tied with the cutoff may
		// still belong to the final top-k under the deterministic
		// tiebreak, so it must be scored. With eps > 0 the cutoff is
		// raised by eps — more pruning, ε-bounded answers (package doc);
		// -Inf + eps is still -Inf, so the warmup phase never prunes.
		if bounds[i] < cutoff.Threshold()+eps {
			pruned.Add(1)
			return nil
		}
		s, err := spec.Score(ctx, i)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			res.Err[i] = err
			return nil
		}
		res.Score[i] = s
		res.Done[i] = true
		scored.Add(1)
		cutoff.Offer(s)
		return nil
	})
	stats.Observe(engine.StageScore, time.Since(start))
	stats.AddScored(scored.Load())
	stats.AddPruned(pruned.Load())
	mstats.AddRefined(scored.Load())
	mstats.AddPruned(pruned.Load())
	res.Pruned = int(pruned.Load())
	errored := 0
	for _, e := range res.Err {
		if e != nil {
			errored++
		}
	}
	res.Skipped = spec.N - int(scored.Load()) - res.Pruned - errored
	return res, mapErr
}

package planner

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"valentine/internal/core"
	"valentine/internal/engine"
	"valentine/internal/table"
)

// trueKth returns the kth-best of scores (1-indexed k; k > len → min).
func trueKth(scores []float64, k int) float64 {
	s := append([]float64(nil), scores...)
	sort.Sort(sort.Reverse(sort.Float64Slice(s)))
	if k > len(s) {
		k = len(s)
	}
	return s[k-1]
}

// TestTopKEpsilonGuarantee fuzzes the ε contract: every score the relaxed
// cascade returns in its top-k is within ε of the true kth-best exact
// score, and ε = 0 returns the exact top-k scores bit-identically.
func TestTopKEpsilonGuarantee(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 50; trial++ {
		n := 10 + rng.Intn(40)
		k := 1 + rng.Intn(8)
		exact := make([]float64, n)
		bounds := make([]float64, n)
		for i := range exact {
			exact[i] = rng.Float64()
			bounds[i] = exact[i] + rng.Float64()*0.3 // admissible by construction
		}
		tk := trueKth(exact, k)
		for _, eps := range []float64{0, 0.01, 0.1, 0.5} {
			res, err := TopK(context.Background(), Spec{
				N:       n,
				K:       k,
				Epsilon: eps,
				Bound:   func(i int) float64 { return bounds[i] },
				Score:   func(_ context.Context, i int) (float64, error) { return exact[i], nil },
			})
			if err != nil {
				t.Fatalf("trial %d eps %v: %v", trial, eps, err)
			}
			var refined []float64
			for i, ok := range res.Done {
				if ok {
					refined = append(refined, res.Score[i])
				}
			}
			sort.Sort(sort.Reverse(sort.Float64Slice(refined)))
			if len(refined) < k {
				t.Fatalf("trial %d eps %v: only %d refined, want >= k=%d", trial, eps, len(refined), k)
			}
			for _, s := range refined[:k] {
				if s < tk-eps {
					t.Fatalf("trial %d eps %v: returned score %v < true kth %v - eps", trial, eps, s, tk)
				}
			}
			if eps == 0 {
				want := append([]float64(nil), exact...)
				sort.Sort(sort.Reverse(sort.Float64Slice(want)))
				for i := 0; i < k; i++ {
					if refined[i] != want[i] {
						t.Fatalf("trial %d eps 0: top-%d scores %v diverge from exact %v", trial, k, refined[:k], want[:k])
					}
				}
			}
		}
	}
}

// TestTopKEpsilonPrunesMore: with a single worker the refinement order is
// deterministic, so a larger ε must prune at least as many candidates.
func TestTopKEpsilonPrunesMore(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n, k := 60, 4
	exact := make([]float64, n)
	bounds := make([]float64, n)
	for i := range exact {
		exact[i] = rng.Float64()
		bounds[i] = exact[i] + rng.Float64()*0.1
	}
	ctx, cancel := engine.Options{Parallelism: 1}.Start(context.Background())
	defer cancel()
	prev := -1
	for _, eps := range []float64{0, 0.05, 0.2, 0.6} {
		res, err := TopK(ctx, Spec{
			N:       n,
			K:       k,
			Epsilon: eps,
			Bound:   func(i int) float64 { return bounds[i] },
			Score:   func(_ context.Context, i int) (float64, error) { return exact[i], nil },
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Pruned < prev {
			t.Fatalf("eps %v pruned %d, less than smaller eps' %d", eps, res.Pruned, prev)
		}
		prev = res.Pruned
	}
	if prev == 0 {
		t.Fatal("largest eps pruned nothing — the relaxation is not biting")
	}
}

// TestScorePairsTopKEpsilonFromContext: ε threads through the context
// (core.WithEpsilon) into the pair-level cascade with the same guarantee.
func TestScorePairsTopKEpsilonFromContext(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	build := func(name string, cols int) *table.Table {
		tbl := table.New(name)
		for c := 0; c < cols; c++ {
			vals := make([]string, 8)
			for r := range vals {
				vals[r] = fmt.Sprintf("v%d", rng.Intn(30))
			}
			tbl.AddColumn(fmt.Sprintf("%s%d", name, c), vals)
		}
		return tbl
	}
	for trial := 0; trial < 20; trial++ {
		src := build("s", 2+rng.Intn(4))
		tgt := build("t", 2+rng.Intn(4))
		sp, tp := core.ProfilePair(nil, src, tgt)
		nTgt := len(tgt.Columns)
		n := len(src.Columns) * nTgt
		exact := make([]float64, n)
		bounds := make([]float64, n)
		for p := range exact {
			exact[p] = rng.Float64()
			bounds[p] = exact[p] + rng.Float64()*0.2
		}
		k := 1 + rng.Intn(4)
		tk := trueKth(exact, k)
		for _, eps := range []float64{0, 0.15} {
			ctx := core.WithEpsilon(context.Background(), eps)
			matches, bestEffort, err := ScorePairsTopK(ctx, sp, tp, k, "eps-test",
				func(i, j int) float64 { return bounds[i*nTgt+j] },
				func(i, j int) (float64, bool) { return exact[i*nTgt+j], true })
			if err != nil || bestEffort {
				t.Fatalf("trial %d eps %v: err=%v bestEffort=%v", trial, eps, err, bestEffort)
			}
			for _, m := range matches {
				if m.Score < tk-eps {
					t.Fatalf("trial %d eps %v: returned %v < true kth %v - eps", trial, eps, m.Score, tk)
				}
			}
			if eps == 0 {
				want := append([]float64(nil), exact...)
				sort.Sort(sort.Reverse(sort.Float64Slice(want)))
				for i, m := range matches {
					if m.Score != want[i] {
						t.Fatalf("trial %d eps 0: rank %d score %v, want exact %v", trial, i, m.Score, want[i])
					}
				}
			}
		}
	}
}

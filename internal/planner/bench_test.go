package planner_test

// BenchmarkCascadeVsFullFidelity: the discovery re-rank on a skewed corpus
// — few genuinely related tables, many junk tables with disjoint values and
// names — through the full-fidelity reference and through the cascade. CI
// runs it as a smoke leg (-benchtime=1x) to keep both arms exercised;
// locally the ns/op ratio shows what the bounds buy. Each iteration starts
// from a cold profile store, like the discover CLI, so the cascade's lazy
// profiling of survivors is part of the measured work.

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"valentine/internal/experiment"
	"valentine/internal/planner"
	"valentine/internal/profile"
	"valentine/internal/table"
)

// skewedCorpus builds the benchmark corpus: relevant tables share the
// query's vocabulary and column names with graded drift, junk tables carry
// per-table pools that bound near zero.
func skewedCorpus(relevant, junk, rows int) (*table.Table, []*table.Table) {
	rng := rand.New(rand.NewSource(11))
	draw := func(lo, n int) []string {
		vals := make([]string, n)
		for i := range vals {
			vals[i] = fmt.Sprintf("cust-%04d", lo+rng.Intn(300))
		}
		return vals
	}
	query := table.New("query").
		AddColumn("customer id", draw(0, rows)).
		AddColumn("region", draw(0, rows))
	corpus := make([]*table.Table, 0, relevant+junk)
	for i := 0; i < relevant; i++ {
		corpus = append(corpus, table.New(fmt.Sprintf("relevant%02d", i)).
			AddColumn("customer id", draw(i*40, rows)).
			AddColumn("region", draw(i*40, rows)))
	}
	for j := 0; j < junk; j++ {
		t := table.New(fmt.Sprintf("junk%03d", j))
		for c := 0; c < 2; c++ {
			vals := make([]string, rows)
			for r := range vals {
				vals[r] = fmt.Sprintf("junk%03d-%d-%d", j, c, rng.Intn(300))
			}
			t.AddColumn(fmt.Sprintf("junk%03d field%d", j, c), vals)
		}
		corpus = append(corpus, t)
	}
	return query, corpus
}

func BenchmarkCascadeVsFullFidelity(b *testing.B) {
	const (
		relevant = 6
		junk     = 60
		rows     = 40
		k        = 5
	)
	query, corpus := skewedCorpus(relevant, junk, rows)
	m, err := experiment.NewRegistry().New(experiment.MethodComaInstance, nil)
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, cascade bool) {
		for i := 0; i < b.N; i++ {
			store := profile.NewStore()
			cands := make([]planner.Candidate, len(corpus))
			for j, t := range corpus {
				cands[j] = planner.Candidate{Name: t.Name, Profile: store.Of(t)}
			}
			var rr *planner.RerankResult
			var err error
			if cascade {
				rr, err = planner.Rerank(context.Background(), m, store.Of(query), cands, "union", k)
			} else {
				store.Warm(corpus...)
				rr, err = planner.RerankFull(context.Background(), m, store.Of(query), cands, "union", k)
			}
			if err != nil {
				b.Fatal(err)
			}
			if len(rr.Ranked) != k {
				b.Fatalf("ranked %d, want %d", len(rr.Ranked), k)
			}
		}
	}
	b.Run("full", func(b *testing.B) { run(b, false) })
	b.Run("cascade", func(b *testing.B) { run(b, true) })
}

package planner

import (
	"context"
	"math"
	"sort"
	"sync/atomic"
	"time"

	"valentine/internal/core"
	"valentine/internal/engine"
	"valentine/internal/profile"
)

// ScorePairsTopK is the bound-aware variant of engine.ScorePairs: the same
// source × target column cross product, but each pair gets a cheap
// admissible upper bound first and is fully scored only while its bound
// can still reach the current kth-best exact score. With k <= 0 (or a nil
// bound) nothing prunes and the output is exactly engine.ScorePairs'.
//
// The result equals engine.ScorePairs' ranked output truncated to its
// first k entries — bit-identical, because pruning is strict against a
// cutoff that never exceeds the final kth score and core.SortMatches
// breaks score ties deterministically.
//
// An approximation budget attached to ctx (core.WithEpsilon) relaxes the
// prune check exactly as in TopK: every returned score is within ε of the
// true top-k, and ε = 0 keeps the bit-identical contract.
//
// label attributes the pair counters to one matcher in the engine stats
// per-matcher breakdown (empty for aggregate-only).
//
// bestEffort reports that the context expired mid-scoring and the returned
// (still correctly ranked) matches cover only the pairs scored so far; the
// context error is returned alongside so the caller can tell a spent
// budget from a dead request (core.IsBudgetExpiry).
func ScorePairsTopK(ctx context.Context, sp, tp *profile.TableProfile, k int, label string, bound func(i, j int) float64, score func(i, j int) (float64, bool)) (matches []core.Match, bestEffort bool, err error) {
	source, target := sp.Table(), tp.Table()
	nSrc, nTgt := len(source.Columns), len(target.Columns)
	n := nSrc * nTgt
	stats := engine.StatsFrom(ctx)
	mstats := stats.Matcher(label)
	workers := engine.OptionsFrom(ctx).Workers()
	eps := core.EpsilonFrom(ctx)
	if math.IsNaN(eps) || eps < 0 {
		eps = 0
	}
	stats.AddCandidates(int64(n))

	// Tier 0: per-pair admissible bounds, fanned out one source row at a
	// time like the score stage.
	bounds := make([]float64, n)
	cascade := k > 0 && bound != nil
	if cascade {
		start := time.Now()
		err := engine.Map(ctx, workers, nSrc, func(i int) error {
			for j := 0; j < nTgt; j++ {
				b := bound(i, j)
				if math.IsNaN(b) {
					b = math.Inf(1)
				}
				bounds[i*nTgt+j] = b
			}
			return nil
		})
		stats.Observe(engine.StageBound, time.Since(start))
		stats.AddBounded(int64(n))
		mstats.AddBounded(int64(n))
		if err != nil {
			return nil, true, err
		}
	} else {
		for p := range bounds {
			bounds[p] = math.Inf(1)
		}
	}

	order := make([]int, n)
	for p := range order {
		order[p] = p
	}
	if cascade {
		sort.SliceStable(order, func(a, b int) bool {
			if bounds[order[a]] != bounds[order[b]] {
				return bounds[order[a]] > bounds[order[b]]
			}
			return order[a] < order[b]
		})
	}

	cutoff := NewCutoff(k)
	slots := make([]core.Match, n)
	done := make([]bool, n)
	var emitted, pruned atomic.Int64
	start := time.Now()
	mapErr := engine.Map(ctx, workers, n, func(pos int) error {
		p := order[pos]
		if bounds[p] < cutoff.Threshold()+eps {
			pruned.Add(1)
			return nil
		}
		i, j := p/nTgt, p%nTgt
		s, emit := score(i, j)
		if !emit {
			pruned.Add(1)
			return nil
		}
		slots[p] = core.Match{
			SourceTable:  source.Name,
			SourceColumn: source.Columns[i].Name,
			TargetTable:  target.Name,
			TargetColumn: target.Columns[j].Name,
			Score:        s,
		}
		done[p] = true
		emitted.Add(1)
		cutoff.Offer(s)
		return nil
	})
	stats.Observe(engine.StageScore, time.Since(start))
	stats.AddScored(emitted.Load())
	stats.AddPruned(pruned.Load())
	mstats.AddRefined(emitted.Load())
	mstats.AddPruned(pruned.Load())

	out := make([]core.Match, 0, emitted.Load())
	for p, ok := range done {
		if ok {
			out = append(out, slots[p])
		}
	}
	stats.Timed(engine.StageRank, func() { core.SortMatches(out) })
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	if mapErr != nil {
		return out, true, mapErr
	}
	return out, false, nil
}

package planner_test

// Randomized conformance fuzzing of the exactness contract on real
// matchers: over fuzzed corpora, the cascade's top-k (Rerank) must be
// bit-identical to the full-fidelity reference's (RerankFull) — scores,
// names, best correspondences, order — for every cascade-relevant matcher
// and both discovery modes. Run under -race in CI, so the concurrent
// cutoff raising is exercised too.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"valentine/internal/core"
	"valentine/internal/engine"
	"valentine/internal/experiment"
	"valentine/internal/matchers/ensemble"
	"valentine/internal/planner"
	"valentine/internal/profile"
	"valentine/internal/table"
)

// fuzzTable draws string columns from a shared vocabulary so cross-table
// value overlap — the signal the bounds read — is substantial but noisy.
// disjoint tables draw from a separate pool and should bound near zero for
// overlap-driven matchers.
func fuzzTable(rng *rand.Rand, name string, disjoint bool) *table.Table {
	t := table.New(name)
	cols := 2 + rng.Intn(3)
	rows := 20 + rng.Intn(30)
	prefix := "val"
	if disjoint {
		prefix = "junk" + name
	}
	for c := 0; c < cols; c++ {
		vals := make([]string, rows)
		for r := range vals {
			if rng.Intn(12) == 0 {
				vals[r] = ""
			} else {
				vals[r] = fmt.Sprintf("%s-%d", prefix, rng.Intn(40))
			}
		}
		// A mix of shared and per-table column names fuzzes the name-token
		// bound signals as well.
		cname := fmt.Sprintf("col%d", c)
		if rng.Intn(3) == 0 {
			cname = fmt.Sprintf("%s-own%d", name, c)
		}
		t.AddColumn(cname, vals)
	}
	return t
}

func fuzzCorpus(rng *rand.Rand, n int) (query *table.Table, cands []planner.Candidate, store *profile.Store) {
	store = profile.NewStore()
	query = fuzzTable(rng, "query", false)
	for i := 0; i < n; i++ {
		tbl := fuzzTable(rng, fmt.Sprintf("t%02d", i), rng.Intn(3) == 0)
		cands = append(cands, planner.Candidate{Name: tbl.Name, Profile: store.Of(tbl)})
	}
	return query, cands, store
}

func conformanceMatchers(t *testing.T) map[string]core.Matcher {
	t.Helper()
	reg := experiment.NewRegistry()
	grids := experiment.QuickGrids()
	out := make(map[string]core.Matcher)
	for _, name := range []string{
		experiment.MethodComaSchema,
		experiment.MethodComaInstance,
		experiment.MethodJaccardLev,
		experiment.MethodLSH,
		experiment.MethodSimFlood,
		experiment.MethodCupid,
		experiment.MethodSemProp,
	} {
		var params core.Params
		if g := grids[name]; len(g) > 0 {
			params = g[0]
		}
		m, err := reg.New(name, params)
		if err != nil {
			t.Fatal(err)
		}
		out[name] = m
	}
	e, err := ensemble.FromRegistry(reg, map[string]core.Params{
		experiment.MethodComaSchema: grids[experiment.MethodComaSchema][0],
	}, []string{experiment.MethodComaSchema, experiment.MethodLSH}, nil)
	if err != nil {
		t.Fatal(err)
	}
	out["ensemble"] = e
	return out
}

// TestRerankConformance is the exactness contract end to end: cascade
// top-k == full-fidelity top-k, bit for bit, with no budget.
func TestRerankConformance(t *testing.T) {
	matchers := conformanceMatchers(t)
	for seed := int64(1); seed <= 3; seed++ {
		rng := rand.New(rand.NewSource(seed))
		query, cands, store := fuzzCorpus(rng, 14)
		qp := store.Of(query)
		for name, m := range matchers {
			for _, mode := range []string{"join", "union"} {
				for _, k := range []int{1, 3, 5} {
					ctx, cancel := engine.Options{}.Start(context.Background())
					full, err := planner.RerankFull(ctx, m, qp, cands, mode, k)
					if err != nil {
						cancel()
						t.Fatalf("seed %d %s/%s k=%d full: %v", seed, name, mode, k, err)
					}
					casc, err := planner.Rerank(ctx, m, qp, cands, mode, k)
					cancel()
					if err != nil {
						t.Fatalf("seed %d %s/%s k=%d cascade: %v", seed, name, mode, k, err)
					}
					if casc.BestEffort {
						t.Fatalf("seed %d %s/%s k=%d: best-effort without a budget", seed, name, mode, k)
					}
					if len(full.Errs) != 0 || len(casc.Errs) != 0 {
						t.Fatalf("seed %d %s/%s k=%d: unexpected errs %v / %v", seed, name, mode, k, full.Errs, casc.Errs)
					}
					if len(casc.Ranked) != len(full.Ranked) {
						t.Fatalf("seed %d %s/%s k=%d: %d ranked, want %d (pruned=%d)",
							seed, name, mode, k, len(casc.Ranked), len(full.Ranked), casc.Pruned)
					}
					for i := range full.Ranked {
						if casc.Ranked[i] != full.Ranked[i] {
							t.Fatalf("seed %d %s/%s k=%d rank %d:\ncascade %+v\nfull    %+v\n(pruned=%d)",
								seed, name, mode, k, i, casc.Ranked[i], full.Ranked[i], casc.Pruned)
						}
					}
				}
			}
		}
	}
}

// TestRerankConformanceEmbDI covers the remaining tail matcher separately:
// every bridged candidate trains word2vec, so the corpus is kept tiny. The
// contract is the same — cascade top-k bit-identical to full fidelity.
func TestRerankConformanceEmbDI(t *testing.T) {
	reg := experiment.NewRegistry()
	m, err := reg.New(experiment.MethodEmbDI, experiment.QuickGrids()[experiment.MethodEmbDI][0])
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	query, cands, store := fuzzCorpus(rng, 5)
	qp := store.Of(query)
	for _, mode := range []string{"join", "union"} {
		ctx, cancel := engine.Options{}.Start(context.Background())
		full, err := planner.RerankFull(ctx, m, qp, cands, mode, 2)
		if err != nil {
			cancel()
			t.Fatalf("%s full: %v", mode, err)
		}
		casc, err := planner.Rerank(ctx, m, qp, cands, mode, 2)
		cancel()
		if err != nil {
			t.Fatalf("%s cascade: %v", mode, err)
		}
		if len(casc.Ranked) != len(full.Ranked) {
			t.Fatalf("%s: %d ranked, want %d (pruned=%d)", mode, len(casc.Ranked), len(full.Ranked), casc.Pruned)
		}
		for i := range full.Ranked {
			if casc.Ranked[i] != full.Ranked[i] {
				t.Fatalf("%s rank %d:\ncascade %+v\nfull    %+v", mode, i, casc.Ranked[i], full.Ranked[i])
			}
		}
	}
}

// TestRerankActuallyPrunes guards against the cascade silently degrading
// into always-score-everything: on a corpus where most candidates share no
// values or tokens with the query, overlap-driven matchers must prune.
func TestRerankActuallyPrunes(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	store := profile.NewStore()
	query := fuzzTable(rng, "query", false)
	var cands []planner.Candidate
	for i := 0; i < 20; i++ {
		// All-junk corpus except two relatives: bounds for the junk are 0
		// for lsh-value-overlap, so with k=1 almost everything prunes.
		tbl := fuzzTable(rng, fmt.Sprintf("t%02d", i), i >= 2)
		cands = append(cands, planner.Candidate{Name: tbl.Name, Profile: store.Of(tbl)})
	}
	reg := experiment.NewRegistry()
	m, err := reg.New(experiment.MethodLSH, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := engine.Options{}.Start(context.Background())
	defer cancel()
	rr, err := planner.Rerank(ctx, m, store.Of(query), cands, "join", 1)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Pruned == 0 {
		t.Fatal("expected the cascade to prune junk candidates")
	}
}

// TestRerankBudgetExpiry: an already-spent budget yields a best-effort
// (possibly empty) ranking plus the deadline error — never a hard failure
// while the outer request is alive.
func TestRerankBudgetExpiry(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	query, cands, store := fuzzCorpus(rng, 10)
	reg := experiment.NewRegistry()
	m, err := reg.New(experiment.MethodComaInstance, experiment.QuickGrids()[experiment.MethodComaInstance][0])
	if err != nil {
		t.Fatal(err)
	}
	outer, cancel := engine.Options{}.Start(context.Background())
	defer cancel()
	qctx, qcancel := core.BudgetContext(outer, time.Nanosecond)
	defer qcancel()
	time.Sleep(time.Millisecond) // the budget is deterministically spent
	rr, rerr := planner.Rerank(qctx, m, store.Of(query), cands, "union", 5)
	if !errors.Is(rerr, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", rerr)
	}
	if !core.IsBudgetExpiry(outer, rerr) {
		t.Fatal("spent budget with a live outer context must classify as best-effort")
	}
	if !rr.BestEffort {
		t.Fatal("BestEffort flag not set")
	}
	if rr.Skipped == 0 {
		t.Fatal("expected skipped candidates")
	}
}

package planner_test

// Unit tests of the cascade primitives on synthetic candidates: the cutoff
// heap, the bound-then-refine exactness contract, budget expiry semantics
// and pair-level top-k. The matcher-backed conformance fuzzing lives in
// conformance_test.go.

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"valentine/internal/core"
	"valentine/internal/engine"
	"valentine/internal/planner"
	"valentine/internal/profile"
	"valentine/internal/table"
)

func TestCutoffThreshold(t *testing.T) {
	c := planner.NewCutoff(3)
	if thr := c.Threshold(); !math.IsInf(thr, -1) {
		t.Fatalf("empty cutoff threshold = %v, want -Inf", thr)
	}
	c.Offer(0.5)
	c.Offer(0.2)
	if thr := c.Threshold(); !math.IsInf(thr, -1) {
		t.Fatalf("under-full cutoff threshold = %v, want -Inf", thr)
	}
	c.Offer(0.8)
	if thr := c.Threshold(); thr != 0.2 {
		t.Fatalf("threshold = %v, want 0.2", thr)
	}
	c.Offer(0.1) // below the kth best: no effect
	if thr := c.Threshold(); thr != 0.2 {
		t.Fatalf("threshold after low offer = %v, want 0.2", thr)
	}
	c.Offer(0.9) // evicts 0.2
	if thr := c.Threshold(); thr != 0.5 {
		t.Fatalf("threshold after high offer = %v, want 0.5", thr)
	}
	c.Offer(math.NaN()) // ignored
	if thr := c.Threshold(); thr != 0.5 {
		t.Fatalf("threshold after NaN offer = %v, want 0.5", thr)
	}
}

func TestCutoffDisabled(t *testing.T) {
	c := planner.NewCutoff(0)
	c.Offer(0.9)
	if thr := c.Threshold(); !math.IsInf(thr, -1) {
		t.Fatalf("disabled cutoff threshold = %v, want -Inf", thr)
	}
}

// TestCutoffConcurrent offers scores from many goroutines and checks the
// final threshold is exactly the kth best — the property the pruning proof
// needs, under -race.
func TestCutoffConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n, k = 1000, 10
	scores := make([]float64, n)
	for i := range scores {
		scores[i] = rng.Float64()
	}
	c := planner.NewCutoff(k)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += 8 {
				c.Offer(scores[i])
			}
		}(w)
	}
	wg.Wait()
	sorted := append([]float64(nil), scores...)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	if got, want := c.Threshold(), sorted[k-1]; got != want {
		t.Fatalf("threshold = %v, want kth best %v", got, want)
	}
}

// topKSet returns the indices of the k best (score desc, index asc) of a
// fully known score vector — the oracle for the exactness tests.
func topKSet(scores []float64, k int) []int {
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		if scores[idx[a]] != scores[idx[b]] {
			return scores[idx[a]] > scores[idx[b]]
		}
		return idx[a] < idx[b]
	})
	if k > len(idx) {
		k = len(idx)
	}
	return idx[:k]
}

// TestTopKExactness fuzzes the core contract: with admissible bounds
// (bound >= exact score) and no budget, the candidates the cascade fully
// scores always include the true top-k, with bit-identical scores.
func TestTopKExactness(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	ctx, cancel := engine.Options{}.Start(context.Background())
	defer cancel()
	for trial := 0; trial < 50; trial++ {
		n := 20 + rng.Intn(180)
		k := 1 + rng.Intn(15)
		scores := make([]float64, n)
		bounds := make([]float64, n)
		for i := range scores {
			// Quantized scores force plenty of exact ties, including at the
			// kth position — the hard case for strict-vs-lax pruning.
			scores[i] = float64(rng.Intn(10)) / 10
			bounds[i] = scores[i] + rng.Float64()*float64(rng.Intn(2))
		}
		res, err := planner.TopK(ctx, planner.Spec{
			N:     n,
			K:     k,
			Bound: func(i int) float64 { return bounds[i] },
			Score: func(_ context.Context, i int) (float64, error) { return scores[i], nil },
		})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, i := range topKSet(scores, k) {
			if !res.Done[i] {
				t.Fatalf("trial %d: true top-%d candidate %d (score %v, bound %v) was not scored (pruned=%d skipped=%d)",
					trial, k, i, scores[i], bounds[i], res.Pruned, res.Skipped)
			}
			if res.Score[i] != scores[i] {
				t.Fatalf("trial %d: candidate %d score %v, want %v", trial, i, res.Score[i], scores[i])
			}
		}
		if res.Skipped != 0 {
			t.Fatalf("trial %d: %d skipped without a budget", trial, res.Skipped)
		}
	}
}

// TestTopKPrunes checks the cascade actually saves work when bounds are
// informative: with exact bounds and a small k over a spread of scores,
// most candidates must be pruned, and pruned+scored covers everything.
func TestTopKPrunes(t *testing.T) {
	ctx, cancel := engine.Options{Parallelism: 1}.Start(context.Background())
	defer cancel()
	const n, k = 200, 5
	scores := make([]float64, n)
	for i := range scores {
		scores[i] = float64(i) / n
	}
	res, err := planner.TopK(ctx, planner.Spec{
		N:     n,
		K:     k,
		Bound: func(i int) float64 { return scores[i] },
		Score: func(_ context.Context, i int) (float64, error) { return scores[i], nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Pruned < n/2 {
		t.Fatalf("pruned %d of %d with exact bounds and k=%d, expected most", res.Pruned, n, k)
	}
	scored := 0
	for _, d := range res.Done {
		if d {
			scored++
		}
	}
	if scored+res.Pruned != n {
		t.Fatalf("scored %d + pruned %d != %d", scored, res.Pruned, n)
	}
}

// TestTopKNoBoundScoresAll: K <= 0 or a nil Bound disables pruning — the
// full-fidelity reference mode.
func TestTopKNoBoundScoresAll(t *testing.T) {
	ctx, cancel := engine.Options{}.Start(context.Background())
	defer cancel()
	for _, spec := range []planner.Spec{
		{N: 50, K: 0, Bound: func(i int) float64 { return 0 }},
		{N: 50, K: 5, Bound: nil},
	} {
		spec.Score = func(_ context.Context, i int) (float64, error) { return float64(i), nil }
		res, err := planner.TopK(ctx, spec)
		if err != nil {
			t.Fatal(err)
		}
		for i, d := range res.Done {
			if !d {
				t.Fatalf("candidate %d not scored in reference mode (K=%d)", i, spec.K)
			}
		}
		if res.Pruned != 0 {
			t.Fatalf("pruned %d in reference mode", res.Pruned)
		}
	}
}

// TestTopKScoreErrorDropsOnlyThatCandidate: a non-context scoring error is
// recorded per candidate; the rest of the cascade is unaffected.
func TestTopKScoreErrorDropsOnlyThatCandidate(t *testing.T) {
	ctx, cancel := engine.Options{}.Start(context.Background())
	defer cancel()
	boom := errors.New("boom")
	res, err := planner.TopK(ctx, planner.Spec{
		N: 10,
		Score: func(_ context.Context, i int) (float64, error) {
			if i == 3 {
				return 0, boom
			}
			return float64(i), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(res.Err[3], boom) {
		t.Fatalf("Err[3] = %v, want boom", res.Err[3])
	}
	if res.Done[3] {
		t.Fatal("errored candidate marked done")
	}
	for i := 0; i < 10; i++ {
		if i != 3 && !res.Done[i] {
			t.Fatalf("candidate %d not scored", i)
		}
	}
	if res.Skipped != 0 {
		t.Fatalf("Skipped = %d, want 0", res.Skipped)
	}
}

// TestTopKBudgetExpiresMidCascade: the budget sub-context expires while
// some candidates are scored and others still queued. The partial result
// comes back alongside the deadline error, IsBudgetExpiry classifies it as
// best-effort, accounting stays consistent, and no worker goroutines leak.
func TestTopKBudgetExpiresMidCascade(t *testing.T) {
	before := runtime.NumGoroutine()
	outer, cancel := engine.Options{Parallelism: 2}.Start(context.Background())
	defer cancel()
	qctx, qcancel := core.BudgetContext(outer, 20*time.Millisecond)
	defer qcancel()
	const n = 64
	var scoredEarly atomic32
	res, err := planner.TopK(qctx, planner.Spec{
		N: n,
		K: 4,
		// Uniform bounds: nothing prunes, so expiry must leave Skipped > 0.
		Bound: func(i int) float64 { return 1 },
		Score: func(ctx context.Context, i int) (float64, error) {
			if scoredEarly.add(1) > 8 {
				// Later candidates block until the budget fires: expiry is
				// guaranteed to land mid-cascade, deterministically.
				<-ctx.Done()
				return 0, ctx.Err()
			}
			return float64(i) / n, nil
		},
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if !core.IsBudgetExpiry(outer, err) {
		t.Fatal("budget expiry with a live outer context must classify as best-effort")
	}
	scored := 0
	for i, d := range res.Done {
		if d {
			scored++
			if res.Score[i] != float64(i)/n {
				t.Fatalf("partial score %d corrupted", i)
			}
		}
	}
	if scored == 0 {
		t.Fatal("expected some candidates scored before expiry")
	}
	if res.Skipped == 0 {
		t.Fatal("expected skipped candidates after expiry")
	}
	if scored+res.Pruned+res.Skipped != n {
		t.Fatalf("accounting: scored %d + pruned %d + skipped %d != %d", scored, res.Pruned, res.Skipped, n)
	}
	// engine.Map waits for in-flight workers before returning, so the pool
	// must be fully drained shortly after.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before+2 {
		t.Fatalf("goroutines leaked: %d before, %d after", before, g)
	}
}

// TestTopKCancelIsError: cancellation of the outer context is never a
// best-effort case.
func TestTopKCancelIsError(t *testing.T) {
	outer, cancel := engine.Options{}.Start(context.Background())
	cancel()
	_, err := planner.TopK(outer, planner.Spec{
		N:     4,
		Score: func(ctx context.Context, i int) (float64, error) { return 0, nil },
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
	if core.IsBudgetExpiry(outer, err) {
		t.Fatal("cancellation must not classify as budget expiry")
	}
}

// TestScorePairsTopKMatchesFullFidelity: the pair-level cascade with
// admissible bounds returns exactly the unpruned reference ranking
// truncated to k, across fuzzed score matrices.
func TestScorePairsTopKMatchesFullFidelity(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ctx, cancel := engine.Options{}.Start(context.Background())
	defer cancel()
	for trial := 0; trial < 30; trial++ {
		nSrc, nTgt := 2+rng.Intn(8), 2+rng.Intn(8)
		k := 1 + rng.Intn(6)
		sp := profile.New(pairTable("src", nSrc))
		tp := profile.New(pairTable("tgt", nTgt))
		scores := make([][]float64, nSrc)
		bounds := make([][]float64, nSrc)
		for i := range scores {
			scores[i] = make([]float64, nTgt)
			bounds[i] = make([]float64, nTgt)
			for j := range scores[i] {
				scores[i][j] = float64(rng.Intn(8)) / 8
				bounds[i][j] = scores[i][j] + rng.Float64()*float64(rng.Intn(2))
			}
		}
		score := func(i, j int) (float64, bool) { return scores[i][j], true }
		got, bestEffort, err := planner.ScorePairsTopK(ctx, sp, tp, k, "pairs-test",
			func(i, j int) float64 { return bounds[i][j] }, score)
		if err != nil || bestEffort {
			t.Fatalf("trial %d: err=%v bestEffort=%v", trial, err, bestEffort)
		}
		want, _, err := planner.ScorePairsTopK(ctx, sp, tp, 0, "", nil, score)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(want) > k {
			want = want[:k]
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d matches, want %d", trial, len(got), len(want))
		}
		for x := range want {
			if got[x] != want[x] {
				t.Fatalf("trial %d: match %d = %+v, want %+v", trial, x, got[x], want[x])
			}
		}
	}
}

// pairTable builds an n-column table whose column names make pair
// identities visible in failures.
func pairTable(name string, n int) *table.Table {
	t := table.New(name)
	for c := 0; c < n; c++ {
		t.AddColumn(fmt.Sprintf("%s-c%d", name, c), []string{"v"})
	}
	return t
}

// atomic32 is a tiny counter helper (sync/atomic via sync.Mutex would
// obscure the test; this keeps it obvious).
type atomic32 struct {
	mu sync.Mutex
	n  int
}

func (a *atomic32) add(d int) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.n += d
	return a.n
}

package core

import (
	"context"

	"valentine/internal/profile"
	"valentine/internal/table"
)

// ContextMatcher is the context-aware extension of Matcher: one scoring path
// that honors ctx deadlines and cancellation mid-scoring, picks its
// parallelism and stats collector up from the context (internal/engine), and
// resolves column profiles through a shared store. MatchContext must rank
// exactly as Match does — the engine changes how work executes, never what
// it computes. All nine built-in matchers and the ensemble implement it.
type ContextMatcher interface {
	Matcher
	// MatchContext ranks column correspondences between source and target,
	// profiling both through store (nil store means one-shot private
	// profiles, as plain Match uses).
	MatchContext(ctx context.Context, store *profile.Store, source, target *table.Table) ([]Match, error)
}

// ProfiledContextMatcher is the profile-level face of the same path, used
// where the caller already holds TableProfiles (the ensemble's members, the
// experiment runner's warmed pairs, discover's re-scoring phase).
type ProfiledContextMatcher interface {
	// MatchProfilesContext ranks column correspondences between the profiled
	// source and target tables under ctx.
	MatchProfilesContext(ctx context.Context, source, target *profile.TableProfile) ([]Match, error)
}

// ProfilePair resolves a table pair's profiles through store; a nil store
// yields fresh one-shot profiles private to the call, sharing one private
// value dictionary so even the store-less path scores on the integer-set
// kernels (scores are bit-identical to the map-based kernels either way).
func ProfilePair(store *profile.Store, source, target *table.Table) (*profile.TableProfile, *profile.TableProfile) {
	if store == nil {
		return profile.NewPair(source, target)
	}
	return store.Of(source), store.Of(target)
}

// MatchWithContext runs m under ctx through the best path it implements:
// the context-aware engine path when m is a ContextMatcher, otherwise the
// profile-aware or plain path with a cancellation check up front. Scores are
// identical on every path.
func MatchWithContext(ctx context.Context, m Matcher, store *profile.Store, source, target *table.Table) ([]Match, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if cm, ok := m.(ContextMatcher); ok {
		return cm.MatchContext(ctx, store, source, target)
	}
	sp, tp := ProfilePair(store, source, target)
	return MatchWith(m, sp, tp)
}

// MatchProfilesWithContext is MatchWithContext over already-profiled tables.
func MatchProfilesWithContext(ctx context.Context, m Matcher, source, target *profile.TableProfile) ([]Match, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if pcm, ok := m.(ProfiledContextMatcher); ok {
		return pcm.MatchProfilesContext(ctx, source, target)
	}
	return MatchWith(m, source, target)
}

package core

import (
	"fmt"
	"sort"
	"strings"
)

// Params carries a matcher's configuration. Values are numeric or string;
// getters supply defaults so matchers stay usable with empty Params.
type Params map[string]any

// Float returns the named parameter as float64, or def when absent.
func (p Params) Float(name string, def float64) float64 {
	v, ok := p[name]
	if !ok {
		return def
	}
	switch x := v.(type) {
	case float64:
		return x
	case int:
		return float64(x)
	case int64:
		return float64(x)
	default:
		return def
	}
}

// Int returns the named parameter as int, or def when absent.
func (p Params) Int(name string, def int) int {
	v, ok := p[name]
	if !ok {
		return def
	}
	switch x := v.(type) {
	case int:
		return x
	case int64:
		return int(x)
	case float64:
		return int(x)
	default:
		return def
	}
}

// String returns the named parameter as string, or def when absent.
func (p Params) String(name, def string) string {
	if v, ok := p[name]; ok {
		if s, ok := v.(string); ok {
			return s
		}
	}
	return def
}

// Clone returns a shallow copy.
func (p Params) Clone() Params {
	out := make(Params, len(p))
	for k, v := range p {
		out[k] = v
	}
	return out
}

// Key renders the params deterministically, for result bookkeeping.
func (p Params) Key() string {
	keys := make([]string, 0, len(p))
	for k := range p {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%v", k, p[k]))
	}
	return strings.Join(parts, ",")
}

// Factory builds a matcher from parameters.
type Factory func(Params) (Matcher, error)

// Registry maps method names to factories.
type Registry struct {
	factories map[string]Factory
	caps      map[string][]Capability
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		factories: make(map[string]Factory),
		caps:      make(map[string][]Capability),
	}
}

// Register adds a factory under a unique name with its Table-I capability
// tags; duplicate registration is an error.
func (r *Registry) Register(name string, f Factory, caps ...Capability) error {
	if name == "" {
		return fmt.Errorf("core: empty matcher name")
	}
	if _, dup := r.factories[name]; dup {
		return fmt.Errorf("core: matcher %q already registered", name)
	}
	r.factories[name] = f
	r.caps[name] = caps
	return nil
}

// New instantiates a registered matcher with the given params.
func (r *Registry) New(name string, p Params) (Matcher, error) {
	f, ok := r.factories[name]
	if !ok {
		return nil, fmt.Errorf("core: unknown matcher %q (have %v)", name, r.Names())
	}
	return f(p)
}

// Names lists the registered method names, sorted.
func (r *Registry) Names() []string {
	out := make([]string, 0, len(r.factories))
	for n := range r.factories {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Capabilities returns the Table-I capability tags of a method.
func (r *Registry) Capabilities(name string) []Capability { return r.caps[name] }

// Capability is a match type from Table I of the paper.
type Capability int

// Match types covered by matchers (paper Table I).
const (
	CapAttributeOverlap Capability = iota
	CapValueOverlap
	CapSemanticOverlap
	CapDataType
	CapDistribution
	CapEmbeddings
)

// String names the capability as in Table I.
func (c Capability) String() string {
	switch c {
	case CapAttributeOverlap:
		return "Attribute Overlap"
	case CapValueOverlap:
		return "Value Overlap"
	case CapSemanticOverlap:
		return "Semantic Overlap"
	case CapDataType:
		return "Data Type"
	case CapDistribution:
		return "Distribution"
	case CapEmbeddings:
		return "Embeddings"
	default:
		return "Unknown"
	}
}

// AllCapabilities lists the capabilities in Table-I column order.
func AllCapabilities() []Capability {
	return []Capability{CapAttributeOverlap, CapValueOverlap, CapSemanticOverlap,
		CapDataType, CapDistribution, CapEmbeddings}
}

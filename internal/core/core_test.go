package core

import (
	"reflect"
	"testing"

	"valentine/internal/table"
)

func TestSortMatchesDeterministic(t *testing.T) {
	ms := []Match{
		{SourceColumn: "b", TargetColumn: "y", Score: 0.5},
		{SourceColumn: "a", TargetColumn: "x", Score: 0.9},
		{SourceColumn: "a", TargetColumn: "w", Score: 0.5},
		{SourceColumn: "a", TargetColumn: "z", Score: 0.5},
	}
	SortMatches(ms)
	if ms[0].Score != 0.9 {
		t.Fatalf("top score = %v", ms[0].Score)
	}
	// ties broken by source then target
	if ms[1].TargetColumn != "w" || ms[2].TargetColumn != "z" || ms[3].SourceColumn != "b" {
		t.Fatalf("tie break wrong: %v", ms)
	}
}

func TestMatchString(t *testing.T) {
	m := Match{SourceTable: "s", SourceColumn: "a", TargetTable: "t", TargetColumn: "b", Score: 0.5}
	if got := m.String(); got != "s.a ~ t.b (0.5000)" {
		t.Fatalf("String = %q", got)
	}
}

func TestGroundTruth(t *testing.T) {
	gt := NewGroundTruth(ColumnPair{"a", "x"}, ColumnPair{"b", "y"})
	gt.Add("c", "z")
	if gt.Size() != 3 {
		t.Fatalf("Size = %d", gt.Size())
	}
	if !gt.Contains("a", "x") || gt.Contains("x", "a") {
		t.Error("Contains is directional")
	}
	pairs := gt.Pairs()
	want := []ColumnPair{{"a", "x"}, {"b", "y"}, {"c", "z"}}
	if !reflect.DeepEqual(pairs, want) {
		t.Fatalf("Pairs = %v", pairs)
	}
	var nilGT *GroundTruth
	if nilGT.Size() != 0 || nilGT.Contains("a", "b") || nilGT.Pairs() != nil {
		t.Error("nil ground truth should be empty")
	}
	var zero GroundTruth
	zero.Add("p", "q")
	if !zero.Contains("p", "q") {
		t.Error("Add on zero value should work")
	}
}

func TestParams(t *testing.T) {
	p := Params{"f": 0.5, "i": 3, "s": "abc", "i64": int64(7), "fi": 2.0}
	if p.Float("f", 0) != 0.5 || p.Float("i", 0) != 3 || p.Float("i64", 0) != 7 {
		t.Error("Float conversions")
	}
	if p.Float("missing", 9) != 9 || p.Float("s", 9) != 9 {
		t.Error("Float defaults")
	}
	if p.Int("i", 0) != 3 || p.Int("fi", 0) != 2 || p.Int("i64", 0) != 7 {
		t.Error("Int conversions")
	}
	if p.Int("missing", 4) != 4 || p.Int("s", 4) != 4 {
		t.Error("Int defaults")
	}
	if p.String("s", "") != "abc" || p.String("f", "d") != "d" || p.String("zz", "d") != "d" {
		t.Error("String")
	}
	c := p.Clone()
	c["f"] = 1.0
	if p.Float("f", 0) != 0.5 {
		t.Error("Clone should not alias")
	}
	if key := (Params{"b": 1, "a": "x"}).Key(); key != "a=x,b=1" {
		t.Errorf("Key = %q", key)
	}
}

type fakeMatcher struct{ name string }

func (f fakeMatcher) Name() string { return f.name }
func (f fakeMatcher) Match(s, tt *table.Table) ([]Match, error) {
	return nil, nil
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	err := r.Register("fake", func(p Params) (Matcher, error) {
		return fakeMatcher{name: "fake"}, nil
	}, CapValueOverlap, CapDataType)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Register("fake", nil); err == nil {
		t.Error("duplicate should fail")
	}
	if err := r.Register("", nil); err == nil {
		t.Error("empty name should fail")
	}
	m, err := r.New("fake", nil)
	if err != nil || m.Name() != "fake" {
		t.Fatalf("New = %v, %v", m, err)
	}
	if _, err := r.New("ghost", nil); err == nil {
		t.Error("unknown should fail")
	}
	if got := r.Names(); !reflect.DeepEqual(got, []string{"fake"}) {
		t.Errorf("Names = %v", got)
	}
	caps := r.Capabilities("fake")
	if len(caps) != 2 || caps[0] != CapValueOverlap {
		t.Errorf("Capabilities = %v", caps)
	}
}

func TestCapabilityStrings(t *testing.T) {
	if len(AllCapabilities()) != 6 {
		t.Fatal("should be six Table-I capabilities")
	}
	if CapEmbeddings.String() != "Embeddings" || Capability(42).String() != "Unknown" {
		t.Error("capability names")
	}
}

func TestScenarios(t *testing.T) {
	s := Scenarios()
	want := []string{"unionable", "view-unionable", "joinable", "semantically-joinable"}
	if !reflect.DeepEqual(s, want) {
		t.Fatalf("Scenarios = %v", s)
	}
}

package core

import (
	"valentine/internal/profile"
)

// ProfiledMatcher is the extension interface of Matcher for methods that
// can consume precomputed column profiles. MatchProfiles must rank exactly
// as Match does on the profiles' tables — the profile layer deduplicates
// derived-data computation, it never changes scores. Ensembles, the
// experiment runner and the discover pipeline dispatch through MatchWith so
// one warmed profile.Store serves every matcher invocation on a corpus.
type ProfiledMatcher interface {
	Matcher
	// MatchProfiles ranks column correspondences between the profiled
	// source and target tables.
	MatchProfiles(source, target *profile.TableProfile) ([]Match, error)
}

// MatchWith runs m over profiled tables: the profile-aware path when m
// implements ProfiledMatcher, the plain Match path otherwise.
func MatchWith(m Matcher, source, target *profile.TableProfile) ([]Match, error) {
	if pm, ok := m.(ProfiledMatcher); ok {
		return pm.MatchProfiles(source, target)
	}
	return m.Match(source.Table(), target.Table())
}

// ValidatePair validates both profiled tables — the shared preamble of
// every MatchProfiles implementation.
func ValidatePair(source, target *profile.TableProfile) error {
	if err := source.Table().Validate(); err != nil {
		return err
	}
	return target.Table().Validate()
}

// Package core defines the matcher abstraction at the heart of Valentine:
// matchers consume a pair of tables and emit a ranked list of column
// correspondences. It also carries the ground-truth representation produced
// by the fabricator and the capability taxonomy of Table I of the paper.
package core

import (
	"fmt"
	"sort"

	"valentine/internal/table"
)

// Match is one scored column correspondence. Higher scores rank earlier.
type Match struct {
	SourceTable  string
	SourceColumn string
	TargetTable  string
	TargetColumn string
	Score        float64
}

// String renders the match for logs and CLI output.
func (m Match) String() string {
	return fmt.Sprintf("%s.%s ~ %s.%s (%.4f)",
		m.SourceTable, m.SourceColumn, m.TargetTable, m.TargetColumn, m.Score)
}

// Matcher is a schema matching method adapted to dataset discovery: it
// returns a ranked list of matches rather than a 1-1 assignment.
type Matcher interface {
	// Name identifies the method (e.g. "coma-schema").
	Name() string
	// Match ranks column correspondences between source and target.
	Match(source, target *table.Table) ([]Match, error)
}

// SortMatches orders matches by descending score, breaking ties
// deterministically by column names so runs are reproducible.
func SortMatches(ms []Match) {
	sort.SliceStable(ms, func(i, j int) bool {
		if ms[i].Score != ms[j].Score {
			return ms[i].Score > ms[j].Score
		}
		if ms[i].SourceColumn != ms[j].SourceColumn {
			return ms[i].SourceColumn < ms[j].SourceColumn
		}
		return ms[i].TargetColumn < ms[j].TargetColumn
	})
}

// ColumnPair identifies a source/target column correspondence by name.
type ColumnPair struct {
	Source string
	Target string
}

// GroundTruth is the set of correct correspondences for a table pair.
type GroundTruth struct {
	pairs map[ColumnPair]struct{}
}

// NewGroundTruth builds a ground truth from pairs.
func NewGroundTruth(pairs ...ColumnPair) *GroundTruth {
	gt := &GroundTruth{pairs: make(map[ColumnPair]struct{}, len(pairs))}
	for _, p := range pairs {
		gt.pairs[p] = struct{}{}
	}
	return gt
}

// Add inserts a correspondence.
func (gt *GroundTruth) Add(source, target string) {
	if gt.pairs == nil {
		gt.pairs = make(map[ColumnPair]struct{})
	}
	gt.pairs[ColumnPair{Source: source, Target: target}] = struct{}{}
}

// Contains reports whether (source,target) is a correct correspondence.
func (gt *GroundTruth) Contains(source, target string) bool {
	if gt == nil || gt.pairs == nil {
		return false
	}
	_, ok := gt.pairs[ColumnPair{Source: source, Target: target}]
	return ok
}

// Size returns the number of correct correspondences.
func (gt *GroundTruth) Size() int {
	if gt == nil {
		return 0
	}
	return len(gt.pairs)
}

// Pairs returns the correspondences sorted for deterministic iteration.
func (gt *GroundTruth) Pairs() []ColumnPair {
	if gt == nil {
		return nil
	}
	out := make([]ColumnPair, 0, len(gt.pairs))
	for p := range gt.pairs {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Source != out[j].Source {
			return out[i].Source < out[j].Source
		}
		return out[i].Target < out[j].Target
	})
	return out
}

// TablePair is a fabricated or curated matching problem: two tables plus
// the correspondences a matcher should recover.
type TablePair struct {
	Name     string
	Source   *table.Table
	Target   *table.Table
	Truth    *GroundTruth
	Scenario string // one of the Scenario* constants, or "curated"
	Variant  string // e.g. "NS/VI 50%"
}

// Relatedness scenario names (paper §III).
const (
	ScenarioUnionable     = "unionable"
	ScenarioViewUnionable = "view-unionable"
	ScenarioJoinable      = "joinable"
	ScenarioSemJoinable   = "semantically-joinable"
	ScenarioCurated       = "curated"
)

// Scenarios lists the four fabricated relatedness scenarios in paper order.
func Scenarios() []string {
	return []string{ScenarioUnionable, ScenarioViewUnionable, ScenarioJoinable, ScenarioSemJoinable}
}

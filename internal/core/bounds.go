package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"valentine/internal/profile"
)

// This file defines the extension interfaces the cost-based cascade
// (internal/planner) dispatches through. A matcher opts into cascade
// participation by implementing one or more of them; matchers that
// implement none are handled conservatively (bound 1, default cost), which
// keeps pruning lossless by construction.

// ScoreBounder is implemented by matchers that can compute a cheap
// admissible upper bound on their table-level discovery score from cached
// profile signals (interned value overlap, name tokens, type coverage).
//
// Admissibility contract: for every pair of profiled tables,
// ScoreBoundProfiles(s, t) >= the maximum Match score the matcher can emit
// for any column pair of (s, t), and >= any discovery aggregate of those
// scores that is itself bounded by the per-pair maximum (both the join
// best-match and the union mean-of-best aggregates are). Overestimating is
// safe — it only costs a wasted full score; underestimating breaks the
// planner's exactness contract and is a bug.
type ScoreBounder interface {
	// ScoreBoundProfiles returns the admissible upper bound. It must be
	// cheap relative to a full MatchProfiles call and must not mutate the
	// profiles beyond warming their lazy caches.
	ScoreBoundProfiles(source, target *profile.TableProfile) float64
}

// ScoreBound returns m's admissible upper bound for the profiled pair: the
// matcher's own bound when it implements ScoreBounder, otherwise 1 (every
// suite score lives in [0, 1]... except jaccard-levenshtein's fuzzy union,
// which implements ScoreBounder itself, so the conservative default stays
// sound for the rest).
func ScoreBound(m Matcher, source, target *profile.TableProfile) float64 {
	if b, ok := m.(ScoreBounder); ok {
		return b.ScoreBoundProfiles(source, target)
	}
	return 1
}

// Coster is implemented by matchers that can estimate their relative full-
// fidelity cost, so the planner can refine candidates in cheapest-first
// order.
type Coster interface {
	// MatchCostHint returns a dimensionless relative cost (higher =
	// slower). Hints are calibrated against measured per-pair runtimes
	// (BENCH_6 Table V); only the ordering matters.
	MatchCostHint() float64
}

// DefaultMatchCost is the relative cost assumed for matchers without a
// Coster hint — deliberately mid-range so unknown matchers neither jump
// the queue nor starve.
const DefaultMatchCost = 10

// MatchCost returns m's relative cost hint, or DefaultMatchCost.
func MatchCost(m Matcher) float64 {
	if c, ok := m.(Coster); ok {
		return c.MatchCostHint()
	}
	return DefaultMatchCost
}

// CascadeMatcher is implemented by matchers that can run an internal
// bound-then-refine cascade of their own (e.g. the ensemble ordering its
// members by cost, or jaccard-levenshtein pruning column pairs against a
// top-k cutoff).
type CascadeMatcher interface {
	// MatchCascade ranks correspondences like MatchProfiles but may prune
	// losslessly against the top-k cutoff and may stop early on budget
	// expiry. With k <= 0 and a generous context it must return exactly
	// MatchProfiles' output. bestEffort reports whether the result was
	// truncated by the context deadline (budget semantics: expired budget
	// is a flag, not an error).
	MatchCascade(ctx context.Context, source, target *profile.TableProfile, k int) (matches []Match, bestEffort bool, err error)
}

// WithEpsilon attaches a per-query approximation budget ε to the context.
// The planner cascade relaxes its prune check by ε: a candidate is cut when
// its admissible bound is below the current kth-best exact score plus ε,
// which prunes more aggressively than the exact cascade while guaranteeing
// every returned score is within ε of the true top-k (see the ε-mode
// section of the planner package doc). ε <= 0 (and NaN) mean "exact" and
// return ctx unchanged, so the zero value costs nothing.
func WithEpsilon(ctx context.Context, eps float64) context.Context {
	if !(eps > 0) {
		return ctx
	}
	return context.WithValue(ctx, epsilonKey{}, eps)
}

// EpsilonFrom returns the context's approximation budget, or 0 (exact) when
// none is attached.
func EpsilonFrom(ctx context.Context) float64 {
	if e, ok := ctx.Value(epsilonKey{}).(float64); ok {
		return e
	}
	return 0
}

type epsilonKey struct{}

// ValidateEpsilon rejects approximation budgets that would silently
// degenerate the cutoff: ε must be a finite value in [0, 1). Every suite
// score lives in [0, 1], so ε >= 1 would authorize pruning everything and
// returning an empty "top-k"; negative and NaN values have no sound
// interpretation at all. Boundary validation (server, CLIs) funnels
// through this one check so the error text stays consistent.
func ValidateEpsilon(eps float64) error {
	if math.IsNaN(eps) || eps < 0 || eps >= 1 {
		return fmt.Errorf("epsilon %v: must be in [0, 1)", eps)
	}
	return nil
}

// ValidateBudget rejects negative per-query latency budgets (0 means "no
// budget"; a negative budget is a caller bug, not an instantly-expired
// timer).
func ValidateBudget(budget time.Duration) error {
	if budget < 0 {
		return fmt.Errorf("budget %v: must be >= 0", budget)
	}
	return nil
}

// BudgetContext derives the per-query budget sub-context: a child deadline
// strictly inside the request's own deadline. Budget <= 0 means "no
// budget" and returns ctx unchanged with a no-op cancel.
func BudgetContext(ctx context.Context, budget time.Duration) (context.Context, context.CancelFunc) {
	if budget <= 0 {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, budget)
}

// IsBudgetExpiry reports whether err is the budget sub-context expiring
// while the outer request context is still live — the best-effort-so-far
// case, as opposed to the request itself being dead (outer deadline or
// cancellation), which stays an error.
func IsBudgetExpiry(outer context.Context, err error) bool {
	return errors.Is(err, context.DeadlineExceeded) && outer.Err() == nil
}

package faultfs

// The injection half of the seam: Faulty wraps an inner FS and fires
// scheduled faults at mutation points. A "point" is one durability-relevant
// operation — write, sync, rename, create, remove, or truncate — counted
// globally in execution order, so a crash-recovery fuzzer can dry-run a
// workload once to learn its point count and then re-run it with a kill
// injected at every single point.

import (
	"errors"
	"fmt"
	"io/fs"
	"strings"
	"sync"
)

// ErrCrashed is returned by every operation after a crash fault fired: the
// simulated process is dead and must not touch the directory again. Recovery
// code then reopens the real filesystem and sees exactly what a kill -9
// would have left.
var ErrCrashed = errors.New("faultfs: crashed")

// Op classifies the mutation points faults can target.
type Op string

// The fault-addressable operations. OpAny in a rule matches every kind.
const (
	OpAny      Op = ""
	OpWrite    Op = "write"
	OpSync     Op = "sync"
	OpRename   Op = "rename"
	OpCreate   Op = "create"
	OpRemove   Op = "remove"
	OpTruncate Op = "truncate"
)

// Fault is what happens when a rule fires.
type Fault struct {
	// Err, when set, is returned by the faulted operation (e.g.
	// syscall.ENOSPC on a write, an I/O error on a sync). With Crash unset
	// the fault is transient: subsequent operations proceed normally.
	Err error
	// Crash kills the filesystem at this point: the faulted operation fails
	// with ErrCrashed (after any torn prefix lands) and so does everything
	// after it.
	Crash bool
	// Torn, for a crashing write, is how many leading bytes of the buffer
	// reach the file before the crash — the torn tail record. Negative or
	// zero writes nothing; values past the buffer length are clamped.
	Torn int
	// FlipBit silently corrupts a write: bit (FlipBit mod 8·len(buf)) of the
	// buffer is inverted before the write proceeds, with no error returned —
	// the model for firmware lying or media rot under a checksummed format.
	// Meaningful only with Err nil and Crash false.
	FlipBit int64
	// flip distinguishes an explicit FlipBit 0 from an unset field.
	flip bool
}

// BitFlip returns a silent-corruption fault inverting the given bit of the
// targeted write's buffer.
func BitFlip(bit int64) Fault { return Fault{FlipBit: bit, flip: true} }

// Rule schedules one fault: the nth (0-based, counted per rule) operation
// matching Op and Path fires Fault, after which the rule is spent.
type Rule struct {
	// Op restricts the kind of operation (OpAny: all kinds).
	Op Op
	// Path, when non-empty, restricts to operations whose file path contains
	// it as a substring (renames match on either path).
	Path string
	// After is how many matching operations pass unharmed first.
	After int
	// Fault fires on the next match.
	Fault Fault
}

// Faulty is an FS wrapper that injects scheduled faults. Safe for concurrent
// use; the global point counter orders concurrent mutations arbitrarily but
// deterministically enough for single-goroutine workloads, which is what
// crash fuzzing uses.
type Faulty struct {
	inner FS

	mu      sync.Mutex
	rules   []*ruleState
	crashed bool
	points  int64
	crashAt int64 // global point index to crash at; -1: none
	torn    int   // torn bytes for a crash landing on a write
}

type ruleState struct {
	Rule
	remaining int
	spent     bool
}

// New wraps inner (nil: OS) with an empty schedule. With no rules and no
// crash point, Faulty is a counting passthrough — the dry-run arm.
func New(inner FS) *Faulty {
	return &Faulty{inner: Or(inner), crashAt: -1}
}

// AddRule schedules a fault.
func (f *Faulty) AddRule(r Rule) {
	f.mu.Lock()
	f.rules = append(f.rules, &ruleState{Rule: r, remaining: r.After})
	f.mu.Unlock()
}

// CrashAtPoint schedules a crash at global mutation point n (0-based). When
// the point lands on a write, torn leading bytes of that write reach the
// file first.
func (f *Faulty) CrashAtPoint(n int64, torn int) {
	f.mu.Lock()
	f.crashAt = n
	f.torn = torn
	f.mu.Unlock()
}

// Points returns how many mutation points have executed — the dry-run
// measurement a crash fuzzer schedules against.
func (f *Faulty) Points() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.points
}

// Crashed reports whether a crash fault has fired.
func (f *Faulty) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// at evaluates one mutation point: it returns the fault to apply (zero
// Fault: none) and whether the filesystem is already dead.
func (f *Faulty) at(op Op, path ...string) (Fault, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return Fault{}, true
	}
	point := f.points
	f.points++
	if f.crashAt >= 0 && point == f.crashAt {
		f.crashed = true
		return Fault{Crash: true, Torn: f.torn}, false
	}
	for _, rs := range f.rules {
		if rs.spent || (rs.Op != OpAny && rs.Op != op) {
			continue
		}
		if rs.Path != "" {
			hit := false
			for _, p := range path {
				if strings.Contains(p, rs.Path) {
					hit = true
					break
				}
			}
			if !hit {
				continue
			}
		}
		if rs.remaining > 0 {
			rs.remaining--
			continue
		}
		rs.spent = true
		if rs.Fault.Crash {
			f.crashed = true
		}
		return rs.Fault, false
	}
	return Fault{}, false
}

// dead reports whether the filesystem has crashed (read-path guard: reads
// are not mutation points but a dead process cannot read either).
func (f *Faulty) dead() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

func (f *Faulty) Create(name string) (File, error) {
	fault, dead := f.at(OpCreate, name)
	if dead || fault.Crash {
		return nil, ErrCrashed
	}
	if fault.Err != nil {
		return nil, &fs.PathError{Op: "create", Path: name, Err: fault.Err}
	}
	inner, err := f.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultyFile{f: f, inner: inner, name: name}, nil
}

func (f *Faulty) Open(name string) (File, error) {
	if f.dead() {
		return nil, ErrCrashed
	}
	inner, err := f.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultyFile{f: f, inner: inner, name: name}, nil
}

func (f *Faulty) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	// Write-capable opens are mutation points (O_CREATE/O_TRUNC mutate);
	// read-only opens are not.
	if flag&(os_O_WRONLY|os_O_RDWR|os_O_CREATE|os_O_TRUNC|os_O_APPEND) != 0 {
		fault, dead := f.at(OpCreate, name)
		if dead || fault.Crash {
			return nil, ErrCrashed
		}
		if fault.Err != nil {
			return nil, &fs.PathError{Op: "open", Path: name, Err: fault.Err}
		}
	} else if f.dead() {
		return nil, ErrCrashed
	}
	inner, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultyFile{f: f, inner: inner, name: name}, nil
}

func (f *Faulty) Rename(oldpath, newpath string) error {
	fault, dead := f.at(OpRename, oldpath, newpath)
	if dead || fault.Crash {
		return ErrCrashed
	}
	if fault.Err != nil {
		return &os_LinkError{Op: "rename", Old: oldpath, New: newpath, Err: fault.Err}
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *Faulty) Remove(name string) error {
	fault, dead := f.at(OpRemove, name)
	if dead || fault.Crash {
		return ErrCrashed
	}
	if fault.Err != nil {
		return &fs.PathError{Op: "remove", Path: name, Err: fault.Err}
	}
	return f.inner.Remove(name)
}

func (f *Faulty) MkdirAll(path string, perm fs.FileMode) error {
	if f.dead() {
		return ErrCrashed
	}
	return f.inner.MkdirAll(path, perm)
}

func (f *Faulty) Stat(name string) (fs.FileInfo, error) {
	if f.dead() {
		return nil, ErrCrashed
	}
	return f.inner.Stat(name)
}

func (f *Faulty) ReadDir(name string) ([]fs.DirEntry, error) {
	if f.dead() {
		return nil, ErrCrashed
	}
	return f.inner.ReadDir(name)
}

// faultyFile routes a File's mutation points back through the schedule.
type faultyFile struct {
	f     *Faulty
	inner File
	name  string
}

func (ff *faultyFile) Name() string { return ff.name }

func (ff *faultyFile) Read(p []byte) (int, error) {
	if ff.f.dead() {
		return 0, ErrCrashed
	}
	return ff.inner.Read(p)
}

func (ff *faultyFile) Write(p []byte) (int, error) {
	fault, dead := ff.f.at(OpWrite, ff.name)
	if dead {
		return 0, ErrCrashed
	}
	if fault.Crash {
		n := 0
		if fault.Torn > 0 {
			torn := fault.Torn
			if torn > len(p) {
				torn = len(p)
			}
			n, _ = ff.inner.Write(p[:torn])
			ff.inner.Sync() // the torn prefix is what the disk kept
		}
		return n, ErrCrashed
	}
	if fault.Err != nil {
		// Short write: half the buffer lands, then the error surfaces —
		// exactly what a full disk does to a buffered writer.
		n, _ := ff.inner.Write(p[:len(p)/2])
		return n, &fs.PathError{Op: "write", Path: ff.name, Err: fault.Err}
	}
	if fault.flip && len(p) > 0 {
		q := append([]byte(nil), p...)
		bit := fault.FlipBit % int64(len(q)*8)
		if bit < 0 {
			bit += int64(len(q) * 8)
		}
		q[bit/8] ^= 1 << uint(bit%8)
		n, err := ff.inner.Write(q)
		return n, err
	}
	return ff.inner.Write(p)
}

func (ff *faultyFile) Seek(offset int64, whence int) (int64, error) {
	if ff.f.dead() {
		return 0, ErrCrashed
	}
	return ff.inner.Seek(offset, whence)
}

func (ff *faultyFile) Close() error {
	// Close is not a mutation point (a crashed process's descriptors close
	// anyway), but the inner file must be released regardless so tests do
	// not leak descriptors.
	return ff.inner.Close()
}

func (ff *faultyFile) Sync() error {
	fault, dead := ff.f.at(OpSync, ff.name)
	if dead || fault.Crash {
		return ErrCrashed
	}
	if fault.Err != nil {
		return &fs.PathError{Op: "sync", Path: ff.name, Err: fault.Err}
	}
	return ff.inner.Sync()
}

func (ff *faultyFile) Truncate(size int64) error {
	fault, dead := ff.f.at(OpTruncate, ff.name)
	if dead || fault.Crash {
		return ErrCrashed
	}
	if fault.Err != nil {
		return &fs.PathError{Op: "truncate", Path: ff.name, Err: fault.Err}
	}
	return ff.inner.Truncate(size)
}

func (ff *faultyFile) Stat() (fs.FileInfo, error) {
	if ff.f.dead() {
		return nil, ErrCrashed
	}
	return ff.inner.Stat()
}

// os flag aliases, kept local so this file's imports stay minimal.
const (
	os_O_WRONLY = 0x1
	os_O_RDWR   = 0x2
	os_O_CREATE = 0x40
	os_O_TRUNC  = 0x200
	os_O_APPEND = 0x400
)

// os_LinkError mirrors os.LinkError for injected rename failures.
type os_LinkError struct {
	Op, Old, New string
	Err          error
}

func (e *os_LinkError) Error() string {
	return fmt.Sprintf("%s %s %s: %v", e.Op, e.Old, e.New, e.Err)
}

func (e *os_LinkError) Unwrap() error { return e.Err }

// Package faultfs is the suite's injectable filesystem seam: a minimal FS /
// File interface pair covering exactly the os operations the persistence
// layer (internal/discovery's snapshots, internal/wal's operation log) and
// their tests use, plus a fault-injecting wrapper that turns "what if the
// disk fails here?" from an assumption into a test.
//
// Production code takes an FS value (defaulting to OS, the passthrough) and
// never notices the seam. Tests wrap OS in a Faulty and schedule faults —
// short writes, torn tail records, ENOSPC, fsync errors, silent bit flips,
// and full crash points after which every operation fails — then assert the
// recovery path, not the happy path. The crash model matches a kill -9: a
// torn write leaves a prefix of the buffer on disk and nothing after the
// crash point mutates the directory again, so whatever the test recovers
// from is exactly what a real crash would have left.
package faultfs

import (
	"io"
	"io/fs"
	"os"
)

// FS is the filesystem surface the persistence layer writes and reads
// through. Implementations: OS (passthrough) and *Faulty (injection).
type FS interface {
	// Create truncates-or-creates name for writing (os.Create semantics).
	Create(name string) (File, error)
	// Open opens name read-only. Directories open too (syncDir uses this).
	Open(name string) (File, error)
	// OpenFile is the general form (os.OpenFile semantics).
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	MkdirAll(path string, perm fs.FileMode) error
	Stat(name string) (fs.FileInfo, error)
	ReadDir(name string) ([]fs.DirEntry, error)
}

// File is the file surface: the subset of *os.File the persistence layer
// touches.
type File interface {
	io.Reader
	io.Writer
	io.Seeker
	io.Closer
	Name() string
	Sync() error
	Truncate(size int64) error
	Stat() (fs.FileInfo, error)
}

// OS is the passthrough filesystem: every call forwards to the os package.
var OS FS = osFS{}

// Or returns fsys, or OS when fsys is nil — the defaulting helper every
// seam entry point uses so a zero-value options struct means "real disk".
func Or(fsys FS) FS {
	if fsys == nil {
		return OS
	}
	return fsys
}

type osFS struct{}

func (osFS) Create(name string) (File, error) { return os.Create(name) }
func (osFS) Open(name string) (File, error)   { return os.Open(name) }
func (osFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}
func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                     { return os.Remove(name) }
func (osFS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) Stat(name string) (fs.FileInfo, error)        { return os.Stat(name) }
func (osFS) ReadDir(name string) ([]fs.DirEntry, error)   { return os.ReadDir(name) }

package faultfs

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

func readBack(t *testing.T, path string) []byte {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return b
}

func TestOSPassthrough(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a.txt")
	f, err := OS.Create(path)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := OS.Rename(path, filepath.Join(dir, "b.txt")); err != nil {
		t.Fatalf("rename: %v", err)
	}
	if got := readBack(t, filepath.Join(dir, "b.txt")); string(got) != "hello" {
		t.Fatalf("content = %q, want hello", got)
	}
	ents, err := OS.ReadDir(dir)
	if err != nil || len(ents) != 1 {
		t.Fatalf("readdir = %v, %v", ents, err)
	}
	if Or(nil) != OS {
		t.Fatal("Or(nil) != OS")
	}
}

func TestFaultyPassthroughCountsPoints(t *testing.T) {
	dir := t.TempDir()
	ff := New(nil)
	f, err := ff.Create(filepath.Join(dir, "x"))
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	f.Write([]byte("abc"))
	f.Sync()
	f.Close()
	ff.Rename(filepath.Join(dir, "x"), filepath.Join(dir, "y"))
	ff.Remove(filepath.Join(dir, "y"))
	// create + write + sync + rename + remove = 5 mutation points.
	if got := ff.Points(); got != 5 {
		t.Fatalf("Points() = %d, want 5", got)
	}
	if ff.Crashed() {
		t.Fatal("Crashed() = true on a clean run")
	}
}

func TestWriteENOSPC(t *testing.T) {
	dir := t.TempDir()
	ff := New(nil)
	ff.AddRule(Rule{Op: OpWrite, Fault: Fault{Err: syscall.ENOSPC}})
	f, err := ff.Create(filepath.Join(dir, "x"))
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	n, err := f.Write([]byte("abcdefgh"))
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("write err = %v, want ENOSPC", err)
	}
	if n != 4 {
		t.Fatalf("short write landed %d bytes, want half (4)", n)
	}
	// The rule is spent: the next write succeeds.
	if _, err := f.Write([]byte("ok")); err != nil {
		t.Fatalf("second write: %v", err)
	}
	f.Close()
	if got := readBack(t, filepath.Join(dir, "x")); string(got) != "abcdok" {
		t.Fatalf("content = %q, want abcdok", got)
	}
}

func TestSyncError(t *testing.T) {
	dir := t.TempDir()
	ff := New(nil)
	ff.AddRule(Rule{Op: OpSync, Path: "x", Fault: Fault{Err: syscall.EIO}})
	f, _ := ff.Create(filepath.Join(dir, "x"))
	f.Write([]byte("data"))
	if err := f.Sync(); !errors.Is(err, syscall.EIO) {
		t.Fatalf("sync err = %v, want EIO", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("second sync: %v", err)
	}
	f.Close()
}

func TestRuleAfterSkipsMatches(t *testing.T) {
	dir := t.TempDir()
	ff := New(nil)
	ff.AddRule(Rule{Op: OpWrite, After: 2, Fault: Fault{Err: syscall.EIO}})
	f, _ := ff.Create(filepath.Join(dir, "x"))
	for i := 0; i < 2; i++ {
		if _, err := f.Write([]byte("a")); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if _, err := f.Write([]byte("a")); !errors.Is(err, syscall.EIO) {
		t.Fatalf("third write err = %v, want EIO", err)
	}
	f.Close()
}

func TestPathFilter(t *testing.T) {
	dir := t.TempDir()
	ff := New(nil)
	ff.AddRule(Rule{Op: OpWrite, Path: "target", Fault: Fault{Err: syscall.EIO}})
	other, _ := ff.Create(filepath.Join(dir, "other"))
	if _, err := other.Write([]byte("ok")); err != nil {
		t.Fatalf("non-matching write faulted: %v", err)
	}
	other.Close()
	tgt, _ := ff.Create(filepath.Join(dir, "target"))
	if _, err := tgt.Write([]byte("x")); !errors.Is(err, syscall.EIO) {
		t.Fatalf("matching write err = %v, want EIO", err)
	}
	tgt.Close()
}

func TestCrashRuleTornWrite(t *testing.T) {
	dir := t.TempDir()
	ff := New(nil)
	ff.AddRule(Rule{Op: OpWrite, Path: "x", Fault: Fault{Crash: true, Torn: 3}})
	f, _ := ff.Create(filepath.Join(dir, "x"))
	n, err := f.Write([]byte("abcdefgh"))
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("write err = %v, want ErrCrashed", err)
	}
	if n != 3 {
		t.Fatalf("torn prefix = %d bytes, want 3", n)
	}
	// Dead: everything fails from here on.
	if _, err := f.Write([]byte("zz")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash write err = %v, want ErrCrashed", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash sync err = %v, want ErrCrashed", err)
	}
	if _, err := ff.Create(filepath.Join(dir, "new")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash create err = %v, want ErrCrashed", err)
	}
	if err := ff.Rename(filepath.Join(dir, "x"), filepath.Join(dir, "y")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash rename err = %v, want ErrCrashed", err)
	}
	if _, err := ff.Open(filepath.Join(dir, "x")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash open err = %v, want ErrCrashed", err)
	}
	f.Close()
	if !ff.Crashed() {
		t.Fatal("Crashed() = false after crash rule fired")
	}
	// The torn prefix is what the real directory kept.
	if got := readBack(t, filepath.Join(dir, "x")); string(got) != "abc" {
		t.Fatalf("on-disk content = %q, want abc", got)
	}
}

func TestCrashAtPoint(t *testing.T) {
	dir := t.TempDir()
	// Dry run: count the points of the workload.
	workload := func(ff *Faulty) error {
		f, err := ff.Create(filepath.Join(dir, "w")) // point 0
		if err != nil {
			return err
		}
		defer f.Close()
		if _, err := f.Write([]byte("11111111")); err != nil { // point 1
			return err
		}
		if err := f.Sync(); err != nil { // point 2
			return err
		}
		return ff.Rename(filepath.Join(dir, "w"), filepath.Join(dir, "done")) // point 3
	}
	dry := New(nil)
	if err := workload(dry); err != nil {
		t.Fatalf("dry run: %v", err)
	}
	if dry.Points() != 4 {
		t.Fatalf("dry Points() = %d, want 4", dry.Points())
	}
	os.Remove(filepath.Join(dir, "done"))

	for p := int64(0); p < 4; p++ {
		ff := New(nil)
		ff.CrashAtPoint(p, 2)
		err := workload(ff)
		if !errors.Is(err, ErrCrashed) {
			t.Fatalf("crash at %d: workload err = %v, want ErrCrashed", p, err)
		}
		if !ff.Crashed() {
			t.Fatalf("crash at %d: Crashed() = false", p)
		}
		// Only the pre-crash state survives.
		switch p {
		case 0:
			if _, err := os.Stat(filepath.Join(dir, "w")); !os.IsNotExist(err) {
				t.Fatalf("crash at create: file exists")
			}
		case 1:
			if got := readBack(t, filepath.Join(dir, "w")); string(got) != "11" {
				t.Fatalf("crash at write: content %q, want torn 11", got)
			}
		case 3:
			if _, err := os.Stat(filepath.Join(dir, "done")); !os.IsNotExist(err) {
				t.Fatalf("crash at rename: rename happened anyway")
			}
		}
		os.Remove(filepath.Join(dir, "w"))
		os.Remove(filepath.Join(dir, "done"))
	}
}

func TestBitFlip(t *testing.T) {
	dir := t.TempDir()
	ff := New(nil)
	ff.AddRule(Rule{Op: OpWrite, Fault: BitFlip(9)}) // bit 1 of byte 1
	f, _ := ff.Create(filepath.Join(dir, "x"))
	orig := []byte{0x00, 0x00, 0x00}
	if _, err := f.Write(orig); err != nil {
		t.Fatalf("flipped write errored: %v", err)
	}
	f.Close()
	got := readBack(t, filepath.Join(dir, "x"))
	if got[1] != 0x02 || got[0] != 0 || got[2] != 0 {
		t.Fatalf("content = %v, want bit 9 flipped ([0 2 0])", got)
	}
	// The caller's buffer must be untouched.
	if orig[1] != 0 {
		t.Fatal("BitFlip mutated the caller's buffer")
	}
}

func TestOpenFileAppendIsMutationPoint(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "log")
	if err := os.WriteFile(path, []byte("seed"), 0o644); err != nil {
		t.Fatal(err)
	}
	ff := New(nil)
	ff.AddRule(Rule{Op: OpCreate, Path: "log", Fault: Fault{Err: syscall.ENOSPC}})
	if _, err := ff.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("append open err = %v, want ENOSPC", err)
	}
	// Read-only opens bypass the schedule entirely.
	f, err := ff.Open(path)
	if err != nil {
		t.Fatalf("read-only open: %v", err)
	}
	b, _ := io.ReadAll(f)
	f.Close()
	if string(b) != "seed" {
		t.Fatalf("read %q, want seed", b)
	}
	if ff.Points() != 1 {
		t.Fatalf("Points() = %d, want 1 (read-only open is not a point)", ff.Points())
	}
}

func TestTruncateFault(t *testing.T) {
	dir := t.TempDir()
	ff := New(nil)
	f, _ := ff.Create(filepath.Join(dir, "x"))
	f.Write([]byte("abcdef"))
	ff.AddRule(Rule{Op: OpTruncate, Fault: Fault{Err: syscall.EIO}})
	if err := f.Truncate(3); !errors.Is(err, syscall.EIO) {
		t.Fatalf("truncate err = %v, want EIO", err)
	}
	if err := f.Truncate(3); err != nil {
		t.Fatalf("second truncate: %v", err)
	}
	f.Close()
	if got := readBack(t, filepath.Join(dir, "x")); string(got) != "abc" {
		t.Fatalf("content = %q, want abc", got)
	}
}

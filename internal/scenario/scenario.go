// Package scenario is the suite's declarative workload engine: a versioned
// scenario file deterministically materializes a corpus of fabricated
// tables (internal/datagen + internal/fabrication) and replays open-loop
// traffic — a weighted ingest:search:match mix at a target QPS — against a
// live internal/server instance, recording per-endpoint latency histograms,
// error counts and achieved-vs-target throughput. Every perf claim that
// used to be a microbench becomes a reproducible scenario: the same file
// and seed produce the same corpus bytes, the same operation sequence and
// the same post-replay top-k results on any machine.
//
// # Seeding contract
//
// All randomness flows from Scenario.Seed; wall clocks, goroutine
// scheduling and map iteration never influence what is generated or
// replayed. Concretely:
//
//   - Source tables: source i of the corpus spec is generated with
//     datagen.Source(name, Options{Rows, Seed}) — datagen salts per source
//     internally, so distinct sources diverge under one seed.
//   - Corpus picks: which source and which recipe fabricate corpus pair p
//     are drawn from one rand stream seeded with hash(Seed, "corpus").
//     Skew biases the source pick toward earlier sources (Zipf-like
//     weight 1/(rank+1)^Skew).
//   - Fabrication: pair p uses fabrication.New(Seed + p*7919), the same
//     per-seed spacing as fabrication.GridSeeds, so pairs from the same
//     source and recipe still split differently.
//   - Churn tables: ingest op payloads come from datagen.Churn(j,
//     Options{Rows: ChurnRows, Seed}) — deterministic in (j, Seed).
//   - Operation sequence: op kinds and payload indices are drawn from a
//     rand stream seeded with hash(Seed, "ops") and fully precomputed
//     before replay starts. Concurrency affects only timing, never which
//     ops run or what they carry; OpsHash pins the sequence.
//
// The contract is what the determinism suite tests assert: two runs of the
// same scenario file report identical corpus hashes, identical op-sequence
// hashes, and identical post-replay probe top-k results.
package scenario

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"

	"valentine/internal/datagen"
	"valentine/internal/fabrication"
)

// Version is the scenario file format version this package reads. Files
// must declare it explicitly: a reader refusing unknown versions is what
// lets the format evolve without silently reinterpreting old files.
const Version = 1

// Named validation errors. Parse wraps each in context (field, value), so
// callers match with errors.Is.
var (
	// ErrParse: the file is not syntactically valid scenario JSON (includes
	// unknown fields — a typo'd knob must fail, not silently default).
	ErrParse = errors.New("scenario: parse error")
	// ErrVersion: the file's version field is missing or not Version.
	ErrVersion = errors.New("scenario: unsupported version")
	// ErrSeed: the seed is missing, zero or negative.
	ErrSeed = errors.New("scenario: invalid seed")
	// ErrCorpus: corpus sizing/sources/skew are invalid.
	ErrCorpus = errors.New("scenario: invalid corpus")
	// ErrRecipes: the recipe mix is empty or contains an invalid recipe.
	ErrRecipes = errors.New("scenario: invalid recipe mix")
	// ErrQPS: target QPS is zero or negative.
	ErrQPS = errors.New("scenario: invalid target QPS")
	// ErrDuration: replay duration is zero or negative.
	ErrDuration = errors.New("scenario: invalid duration")
	// ErrMix: the ingest:search:match ratios are negative or sum to zero.
	ErrMix = errors.New("scenario: invalid workload mix")
	// ErrWorkload: other workload knobs (top-k, workers) are out of range.
	ErrWorkload = errors.New("scenario: invalid workload")
)

// Scenario is one versioned workload definition. The JSON form is the
// on-disk format (see examples/scenarios/smoke.json); unknown fields are
// rejected.
type Scenario struct {
	// Version must equal Version (1).
	Version int `json:"version"`
	// Name labels the scenario in reports.
	Name string `json:"name"`
	// Seed drives all corpus and replay randomness (see the package doc's
	// seeding contract). Must be > 0.
	Seed int64 `json:"seed"`
	// Corpus sizes and shapes the materialized corpus.
	Corpus CorpusSpec `json:"corpus"`
	// Workload shapes the replayed traffic.
	Workload WorkloadSpec `json:"workload"`
}

// CorpusSpec declares the fabricated corpus.
type CorpusSpec struct {
	// Sources names the datagen fabrication sources to draw from
	// (default: all of datagen.SourceNames()).
	Sources []string `json:"sources,omitempty"`
	// Rows is the row count of each generated source table (default 120).
	Rows int `json:"rows,omitempty"`
	// Tables is the corpus size: fabrication stops once at least this many
	// tables exist (each fabricated pair contributes two). Must be > 0.
	Tables int `json:"tables"`
	// Skew ≥ 0 biases source picks toward earlier Sources entries with
	// Zipf-like weight 1/(rank+1)^Skew; 0 is uniform.
	Skew float64 `json:"skew,omitempty"`
	// Recipes is the weighted fabrication mix; at least one entry.
	Recipes []RecipeSpec `json:"recipes"`
	// ChurnTables/ChurnRows size the pool of churn tables that ingest ops
	// upsert during replay (defaults 8 and Rows/2).
	ChurnTables int `json:"churn_tables,omitempty"`
	ChurnRows   int `json:"churn_rows,omitempty"`
}

// RecipeSpec is one weighted cell of the fabrication grid: a scenario kind
// with its overlap parameters and noise grade.
type RecipeSpec struct {
	// Kind is one of fabrication.RecipeKinds(): "unionable",
	// "view-unionable", "joinable", "semantically-joinable".
	Kind string `json:"kind"`
	// Weight > 0 is the relative pick probability (default 1).
	Weight float64 `json:"weight,omitempty"`
	// RowOverlap/ColOverlap parameterize the split (see fabrication.Recipe).
	RowOverlap float64 `json:"row_overlap,omitempty"`
	ColOverlap float64 `json:"col_overlap,omitempty"`
	// NoisySchema/NoisyInstances select the noise grade (paper's NS/NI).
	NoisySchema    bool `json:"noisy_schema,omitempty"`
	NoisyInstances bool `json:"noisy_instances,omitempty"`
}

// recipe converts the spec to the fabrication package's form.
func (r RecipeSpec) recipe() fabrication.Recipe {
	return fabrication.Recipe{
		Kind:       r.Kind,
		RowOverlap: r.RowOverlap,
		ColOverlap: r.ColOverlap,
		Variant: fabrication.Variant{
			NoisySchema:    r.NoisySchema,
			NoisyInstances: r.NoisyInstances,
		},
	}
}

// WorkloadSpec declares the replayed traffic.
type WorkloadSpec struct {
	// TargetQPS is the open-loop arrival rate. Must be > 0.
	TargetQPS float64 `json:"target_qps"`
	// DurationMS is the replay length in milliseconds. Must be > 0.
	DurationMS int `json:"duration_ms"`
	// Mix is the relative ingest:search:match ratio; ratios must be ≥ 0 and
	// sum to > 0.
	Mix MixSpec `json:"mix"`
	// TopK is the k of every search op (default 10).
	TopK int `json:"top_k,omitempty"`
	// Workers is the replay worker-pool size (default 8).
	Workers int `json:"workers,omitempty"`
	// MatchMethod is the matcher match ops run (default "coma-schema").
	MatchMethod string `json:"match_method,omitempty"`
}

// MixSpec is the relative operation mix.
type MixSpec struct {
	Ingest float64 `json:"ingest"`
	Search float64 `json:"search"`
	Match  float64 `json:"match"`
}

// Parse reads, validates and defaults one scenario document.
func Parse(r io.Reader) (*Scenario, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Scenario
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrParse, err)
	}
	// A second document in the same file is a config error, not trailing
	// noise to ignore.
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return nil, fmt.Errorf("%w: trailing data after scenario document", ErrParse)
	}
	if err := s.validate(); err != nil {
		return nil, err
	}
	s.applyDefaults()
	return &s, nil
}

// ParseFile reads one scenario file.
func ParseFile(path string) (*Scenario, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	s, err := Parse(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// validate applies the validation-first contract: an invalid scenario
// fails by name before any table is generated or any request sent.
func (s *Scenario) validate() error {
	if s.Version != Version {
		return fmt.Errorf("%w: file declares version %d, this build reads %d",
			ErrVersion, s.Version, Version)
	}
	if s.Seed <= 0 {
		return fmt.Errorf("%w: seed %d must be > 0", ErrSeed, s.Seed)
	}
	if s.Corpus.Tables <= 0 {
		return fmt.Errorf("%w: tables %d must be > 0", ErrCorpus, s.Corpus.Tables)
	}
	if s.Corpus.Rows < 0 || s.Corpus.ChurnTables < 0 || s.Corpus.ChurnRows < 0 {
		return fmt.Errorf("%w: negative sizing", ErrCorpus)
	}
	if s.Corpus.Skew < 0 {
		return fmt.Errorf("%w: skew %v must be ≥ 0", ErrCorpus, s.Corpus.Skew)
	}
	for _, name := range s.Corpus.Sources {
		if !knownSource(name) {
			return fmt.Errorf("%w: unknown source %q (have %v)",
				ErrCorpus, name, datagen.SourceNames())
		}
	}
	if len(s.Corpus.Recipes) == 0 {
		return fmt.Errorf("%w: empty — name at least one recipe", ErrRecipes)
	}
	for i, r := range s.Corpus.Recipes {
		if r.Weight < 0 {
			return fmt.Errorf("%w: recipe %d weight %v must be ≥ 0 (0 defaults to 1)",
				ErrRecipes, i, r.Weight)
		}
		if err := r.recipe().Validate(); err != nil {
			return fmt.Errorf("%w: recipe %d: %v", ErrRecipes, i, err)
		}
	}
	w := s.Workload
	if w.TargetQPS <= 0 {
		return fmt.Errorf("%w: target_qps %v must be > 0", ErrQPS, w.TargetQPS)
	}
	if w.DurationMS <= 0 {
		return fmt.Errorf("%w: duration_ms %d must be > 0", ErrDuration, w.DurationMS)
	}
	if w.Mix.Ingest < 0 || w.Mix.Search < 0 || w.Mix.Match < 0 {
		return fmt.Errorf("%w: negative ratio in ingest:search:match = %v:%v:%v",
			ErrMix, w.Mix.Ingest, w.Mix.Search, w.Mix.Match)
	}
	if w.Mix.Ingest+w.Mix.Search+w.Mix.Match == 0 {
		return fmt.Errorf("%w: ingest:search:match ratios sum to zero", ErrMix)
	}
	if w.TopK < 0 {
		return fmt.Errorf("%w: top_k %d must be ≥ 0", ErrWorkload, w.TopK)
	}
	if w.Workers < 0 {
		return fmt.Errorf("%w: workers %d must be ≥ 0", ErrWorkload, w.Workers)
	}
	return nil
}

func knownSource(name string) bool {
	for _, s := range datagen.SourceNames() {
		if s == name {
			return true
		}
	}
	return false
}

// applyDefaults fills the documented defaults after validation, so the
// materializer and replayer never re-derive them.
func (s *Scenario) applyDefaults() {
	if s.Name == "" {
		s.Name = "unnamed"
	}
	if len(s.Corpus.Sources) == 0 {
		s.Corpus.Sources = datagen.SourceNames()
	}
	if s.Corpus.Rows == 0 {
		s.Corpus.Rows = 120
	}
	if s.Corpus.ChurnTables == 0 {
		s.Corpus.ChurnTables = 8
	}
	if s.Corpus.ChurnRows == 0 {
		s.Corpus.ChurnRows = (s.Corpus.Rows + 1) / 2
	}
	for i := range s.Corpus.Recipes {
		if s.Corpus.Recipes[i].Weight == 0 {
			s.Corpus.Recipes[i].Weight = 1
		}
	}
	if s.Workload.TopK == 0 {
		s.Workload.TopK = 10
	}
	if s.Workload.Workers == 0 {
		s.Workload.Workers = 8
	}
	if s.Workload.MatchMethod == "" {
		s.Workload.MatchMethod = "coma-schema"
	}
}

// saltedSeed derives an independent seed stream from the scenario seed and
// a label, FNV-1a style — the same construction internal/fabrication uses,
// so streams with different labels never alias.
func saltedSeed(seed int64, label string) int64 {
	h := int64(1469598103934665603)
	for _, b := range []byte(label) {
		h ^= int64(b)
		h *= 1099511628211
	}
	return seed ^ h
}

// String renders a one-line summary for CLI banners.
func (s *Scenario) String() string {
	kinds := make([]string, len(s.Corpus.Recipes))
	for i, r := range s.Corpus.Recipes {
		kinds[i] = r.Kind
	}
	return fmt.Sprintf("%s (seed %d): %d tables from %s via [%s]; %.0f qps × %dms, mix %v:%v:%v",
		s.Name, s.Seed, s.Corpus.Tables, strings.Join(s.Corpus.Sources, ","),
		strings.Join(kinds, ","), s.Workload.TargetQPS, s.Workload.DurationMS,
		s.Workload.Mix.Ingest, s.Workload.Mix.Search, s.Workload.Mix.Match)
}

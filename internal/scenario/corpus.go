package scenario

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash"
	"math"
	"math/rand"

	"valentine/internal/datagen"
	"valentine/internal/fabrication"
	"valentine/internal/table"
)

// Corpus is one materialized scenario corpus: the fabricated tables in
// their deterministic generation order, the pair structure they came from,
// the churn pool for ingest traffic, and the canonical content hash.
type Corpus struct {
	// Tables are the corpus tables in generation order; names are
	// prefixed "cNNNN_" so every table is unique even when many pairs
	// fabricate from the same source.
	Tables []*table.Table
	// Pairs records which corpus tables form a fabricated pair, for match
	// ops and probe queries.
	Pairs []Pair
	// Churn is the pool of ingest-op payload tables.
	Churn []*table.Table
	// Hash is the hex SHA-256 of the corpus's canonical serialization
	// (every table's name, header and cells in order — churn included,
	// since churn tables reach the catalog during replay).
	Hash string
	// Columns and Rows are corpus-wide totals (churn excluded).
	Columns int
	Rows    int
}

// Pair is one fabricated pair inside the corpus.
type Pair struct {
	// Source and Target index Corpus.Tables.
	Source, Target int
	// Recipe is the grid label ("joinable" etc.); Variant the noise label.
	Recipe  string
	Variant string
}

// Materialize deterministically builds the scenario's corpus. Two calls on
// equal scenarios always return byte-identical tables and equal hashes —
// the seeding contract in the package doc.
func (s *Scenario) Materialize() (*Corpus, error) {
	sources := make([]*table.Table, len(s.Corpus.Sources))
	for i, name := range s.Corpus.Sources {
		src, err := datagen.Source(name, datagen.Options{Rows: s.Corpus.Rows, Seed: s.Seed})
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorpus, err)
		}
		sources[i] = src
	}
	srcWeights := make([]float64, len(sources))
	for i := range srcWeights {
		srcWeights[i] = 1 / math.Pow(float64(i+1), s.Corpus.Skew)
	}
	recWeights := make([]float64, len(s.Corpus.Recipes))
	for i, r := range s.Corpus.Recipes {
		recWeights[i] = r.Weight
	}

	c := &Corpus{}
	rng := rand.New(rand.NewSource(saltedSeed(s.Seed, "corpus")))
	for p := 0; len(c.Tables) < s.Corpus.Tables; p++ {
		src := sources[weightedPick(rng, srcWeights)]
		spec := s.Corpus.Recipes[weightedPick(rng, recWeights)]
		f := fabrication.New(s.Seed + int64(p)*7919) // GridSeeds' per-seed spacing
		pair, err := f.Fabricate(src, spec.recipe())
		if err != nil {
			return nil, fmt.Errorf("%w: pair %d (%s on %s): %v",
				ErrCorpus, p, spec.Kind, src.Name, err)
		}
		c.Pairs = append(c.Pairs, Pair{
			Source:  c.addTable(pair.Source),
			Target:  c.addTable(pair.Target),
			Recipe:  pair.Scenario,
			Variant: pair.Variant,
		})
	}
	for j := 0; j < s.Corpus.ChurnTables; j++ {
		c.Churn = append(c.Churn,
			datagen.Churn(j, datagen.Options{Rows: s.Corpus.ChurnRows, Seed: s.Seed}))
	}

	h := sha256.New()
	for _, t := range c.Tables {
		hashTable(h, t)
	}
	for _, t := range c.Churn {
		hashTable(h, t)
	}
	c.Hash = hex.EncodeToString(h.Sum(nil))
	return c, nil
}

// addTable names the table uniquely by its corpus position and appends it,
// returning its index.
func (c *Corpus) addTable(t *table.Table) int {
	t.Name = fmt.Sprintf("c%04d_%s", len(c.Tables), t.Name)
	c.Tables = append(c.Tables, t)
	c.Columns += t.NumColumns()
	c.Rows += t.NumRows()
	return len(c.Tables) - 1
}

// hashTable feeds one table's canonical serialization into h: the name,
// then every column's name and cells, each field length-prefixed so no two
// distinct corpora can collide by field concatenation.
func hashTable(h hash.Hash, t *table.Table) {
	writeField(h, t.Name)
	for i := range t.Columns {
		col := &t.Columns[i]
		writeField(h, col.Name)
		for _, v := range col.Values {
			writeField(h, v)
		}
	}
}

func writeField(h hash.Hash, s string) {
	var lenBuf [10]byte
	n := len(s)
	i := 0
	for n >= 0x80 {
		lenBuf[i] = byte(n) | 0x80
		n >>= 7
		i++
	}
	lenBuf[i] = byte(n)
	h.Write(lenBuf[:i+1])
	h.Write([]byte(s))
}

// weightedPick draws one index with probability proportional to weights.
// Weights are validated positive-sum upstream.
func weightedPick(rng *rand.Rand, weights []float64) int {
	var total float64
	for _, w := range weights {
		total += w
	}
	x := rng.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// probePairs returns up to n pair source-table indices, evenly spread over
// the corpus, used for the post-replay top-k stability probes.
func (c *Corpus) probePairs(n int) []int {
	if n > len(c.Pairs) {
		n = len(c.Pairs)
	}
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, c.Pairs[i*len(c.Pairs)/n].Source)
	}
	return out
}

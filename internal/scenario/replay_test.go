package scenario

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"
)

// TestReplaySmokeDeterministic is the determinism suite: the checked-in
// smoke scenario replayed twice against fresh in-process servers, with
// concurrent ingest+search+match workers, must report zero errors,
// identical corpus hashes, identical op sequences, and identical probe
// top-k results. Runs in short mode (it is the acceptance gate) and is in
// the CI race matrix, so the replay path itself is the race test.
func TestReplaySmokeDeterministic(t *testing.T) {
	run := func() *Report {
		t.Helper()
		s, err := ParseFile(smokeFile)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Run(context.Background(), s, "")
		if err != nil {
			t.Fatal(err)
		}
		if rep.Errors != 0 {
			t.Fatalf("replay reported %d errors:\n%+v", rep.Errors, rep.Endpoints)
		}
		if err := rep.Check(); err != nil {
			t.Fatalf("report failed its own schema check: %v", err)
		}
		return rep
	}
	r1 := run()
	r2 := run()

	if r1.Corpus.Hash != smokeCorpusHash {
		t.Errorf("corpus hash = %s, want golden %s", r1.Corpus.Hash, smokeCorpusHash)
	}
	if r1.Corpus.Hash != r2.Corpus.Hash {
		t.Errorf("corpus hashes differ across runs: %s vs %s", r1.Corpus.Hash, r2.Corpus.Hash)
	}
	if r1.OpsHash != r2.OpsHash {
		t.Errorf("ops hashes differ across runs: %s vs %s", r1.OpsHash, r2.OpsHash)
	}
	if len(r1.Probes) == 0 {
		t.Fatal("no probe results")
	}
	if !reflect.DeepEqual(r1.Probes, r2.Probes) {
		t.Errorf("probe top-k differ across runs:\n%+v\nvs\n%+v", r1.Probes, r2.Probes)
	}
}

// TestReplayFillsCatalog replays against a caller-owned catalog and checks
// the post-replay state: every corpus table is live, and ingest ops added
// churn tables on top.
func TestReplayFillsCatalog(t *testing.T) {
	s, err := ParseFile(smokeFile)
	if err != nil {
		t.Fatal(err)
	}
	c, err := s.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	p, err := StartInProcess()
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	cl := NewClient(p.URL, s.Workload.Workers)
	if err := cl.WaitReady(context.Background()); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Replay(context.Background(), c, cl)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("%d ops failed", rep.Errors)
	}
	ix := p.Index()
	live := map[string]bool{}
	for _, name := range ix.Tables() {
		live[name] = true
	}
	for _, tab := range c.Tables {
		if !live[tab.Name] {
			t.Errorf("corpus table %s not live after replay", tab.Name)
		}
	}
	if st, ok := rep.Endpoints["ingest"]; ok && st.Count > 0 {
		churned := 0
		for _, tab := range c.Churn {
			if live[tab.Name] {
				churned++
			}
		}
		if churned == 0 {
			t.Error("ingest ops ran but no churn table is live")
		}
	}
}

func TestWaitReadyTimeout(t *testing.T) {
	// Nothing listens on a reserved port; readiness must fail when the
	// context expires, not hang.
	cl := NewClient("http://127.0.0.1:1", 1)
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	err := cl.WaitReady(ctx)
	if err == nil {
		t.Fatal("WaitReady succeeded against a dead address")
	}
	if !strings.Contains(err.Error(), "not ready") {
		t.Errorf("error %v does not name readiness", err)
	}
}

// TestReportCheck exercises the schema gate the CI bench-smoke leg relies
// on: a well-formed report passes, and each corruption is caught.
func TestReportCheck(t *testing.T) {
	good := func() *Report {
		return &Report{
			Schema:    ReportSchema,
			Scenario:  "t",
			Seed:      1,
			Corpus:    CorpusInfo{Tables: 2, Columns: 4, Hash: strings.Repeat("a", 64)},
			Ops:       10,
			OpsHash:   strings.Repeat("b", 64),
			TargetQPS: 100, AchievedQPS: 90, ElapsedMS: 100,
			Endpoints: map[string]EndpointStats{
				"search": {Count: 9, Errors: 1, MeanUS: 50, P50US: 40, P95US: 80, P99US: 90, MaxUS: 100},
			},
		}
	}
	if err := good().Check(); err != nil {
		t.Fatalf("valid report rejected: %v", err)
	}
	cases := []struct {
		name    string
		corrupt func(*Report)
	}{
		{"wrong schema", func(r *Report) { r.Schema = 99 }},
		{"empty name", func(r *Report) { r.Scenario = "" }},
		{"bad corpus hash", func(r *Report) { r.Corpus.Hash = "abc" }},
		{"empty corpus", func(r *Report) { r.Corpus.Tables = 0 }},
		{"bad ops hash", func(r *Report) { r.OpsHash = "" }},
		{"no ops", func(r *Report) { r.Ops = 0 }},
		{"no qps", func(r *Report) { r.AchievedQPS = 0 }},
		{"no endpoints", func(r *Report) { r.Endpoints = nil }},
		{"non-monotone quantiles", func(r *Report) {
			ep := r.Endpoints["search"]
			ep.P95US = ep.P99US + 1000
			ep.P50US = ep.P95US + 1000
			r.Endpoints["search"] = ep
		}},
		{"mean above max", func(r *Report) {
			ep := r.Endpoints["search"]
			ep.MeanUS = ep.MaxUS + 1
			r.Endpoints["search"] = ep
		}},
		{"ops not accounted for", func(r *Report) { r.Ops = 99 }},
		{"error kinds mismatch", func(r *Report) {
			ep := r.Endpoints["search"]
			ep.ErrorKinds = map[string]int64{"overloaded": 2}
			r.Endpoints["search"] = ep
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := good()
			tc.corrupt(r)
			if err := r.Check(); err == nil {
				t.Fatalf("Check accepted a report with %s", tc.name)
			}
		})
	}
}

// TestErrorKind pins the failure taxonomy's mapping from raw errors.
func TestErrorKind(t *testing.T) {
	cases := []struct {
		err  error
		want string
	}{
		{&StatusError{Code: 429}, "overloaded"},
		{&StatusError{Code: 503}, "unavailable"},
		{&StatusError{Code: 500}, "server"},
		{&StatusError{Code: 404}, "client"},
		{fmt.Errorf("probe: %w", &StatusError{Code: 429}), "overloaded"},
		{context.DeadlineExceeded, "timeout"},
		{context.Canceled, "timeout"},
		{errors.New("dial tcp: connection refused"), "transport"},
	}
	for _, tc := range cases {
		if got := ErrorKind(tc.err); got != tc.want {
			t.Errorf("ErrorKind(%v) = %q, want %q", tc.err, got, tc.want)
		}
	}
}

// TestHistQuantiles pins the histogram's ordering guarantee at the unit
// level: quantiles are monotone and never exceed the exact max.
func TestHistQuantiles(t *testing.T) {
	h := &hist{}
	for i := 1; i <= 1000; i++ {
		h.observe(time.Duration(i) * time.Microsecond)
	}
	h.fail("transport")
	st := h.stats()
	if st.Count != 1000 || st.Errors != 1 {
		t.Fatalf("count=%d errors=%d", st.Count, st.Errors)
	}
	if st.ErrorKinds["transport"] != 1 {
		t.Fatalf("error kinds = %v, want transport=1", st.ErrorKinds)
	}
	if !(st.P50US <= st.P95US && st.P95US <= st.P99US && st.P99US <= st.MaxUS) {
		t.Errorf("quantiles not monotone: %+v", st)
	}
	if st.MaxUS != 1000 {
		t.Errorf("max = %dµs, want 1000", st.MaxUS)
	}
	if st.P50US < 500/2 || st.P50US > 1000 {
		t.Errorf("p50 = %dµs implausible for uniform 1..1000", st.P50US)
	}
}

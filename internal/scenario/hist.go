package scenario

// Latency histograms: log-bucketed (≈12% resolution), fixed memory, safe
// for concurrent recording. Replay workers record into one histogram per
// endpoint; quantiles are read once at report time.

import (
	"math"
	"sync"
	"time"
)

// histBuckets spans 1µs to ~2000s at ×1.125 per bucket.
const histBuckets = 182

var histGrowth = math.Log(1.125)

// hist is a concurrent latency histogram with exact count/sum/max.
type hist struct {
	mu       sync.Mutex
	counts   [histBuckets]uint64
	n        uint64
	errs     uint64
	errKinds map[string]uint64
	sum      time.Duration
	max      time.Duration
}

// bucketOf maps a latency to its bucket: floor(log1.125(µs)), clamped.
func bucketOf(d time.Duration) int {
	us := d.Microseconds()
	if us < 1 {
		return 0
	}
	b := int(math.Log(float64(us)) / histGrowth)
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// bucketUpper is the inclusive upper bound of bucket b in microseconds —
// what quantiles report, so a quantile never understates the latency.
func bucketUpper(b int) int64 {
	return int64(math.Ceil(math.Exp(float64(b+1) * histGrowth)))
}

func (h *hist) observe(d time.Duration) {
	h.mu.Lock()
	h.counts[bucketOf(d)]++
	h.n++
	h.sum += d
	if d > h.max {
		h.max = d
	}
	h.mu.Unlock()
}

// fail records one failed op under its taxonomy kind (see ErrorKind).
func (h *hist) fail(kind string) {
	h.mu.Lock()
	h.errs++
	if h.errKinds == nil {
		h.errKinds = make(map[string]uint64)
	}
	h.errKinds[kind]++
	h.mu.Unlock()
}

// quantileUS returns the q-quantile in microseconds (upper bucket bound,
// clamped to the exact max so p99 can never exceed it).
func (h *hist) quantileUS(q float64) int64 {
	if h.n == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(h.n)))
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for b, c := range h.counts {
		seen += c
		if seen >= rank {
			us := bucketUpper(b)
			if m := h.max.Microseconds(); us > m {
				us = m
			}
			return us
		}
	}
	return h.max.Microseconds()
}

// EndpointStats is the report form of one endpoint's histogram.
type EndpointStats struct {
	Count  int64 `json:"count"`
	Errors int64 `json:"errors"`
	// ErrorKinds breaks Errors down by taxonomy — overloaded, unavailable,
	// client, server, timeout, transport — so a failed run says *how* it
	// failed, not just how much.
	ErrorKinds map[string]int64 `json:"error_kinds,omitempty"`
	MeanUS     int64            `json:"mean_us"`
	P50US      int64            `json:"p50_us"`
	P95US      int64            `json:"p95_us"`
	P99US      int64            `json:"p99_us"`
	MaxUS      int64            `json:"max_us"`
}

// stats snapshots the histogram. Call after all recording stopped.
func (h *hist) stats() EndpointStats {
	h.mu.Lock()
	defer h.mu.Unlock()
	st := EndpointStats{
		Count:  int64(h.n),
		Errors: int64(h.errs),
		MaxUS:  h.max.Microseconds(),
	}
	if len(h.errKinds) > 0 {
		st.ErrorKinds = make(map[string]int64, len(h.errKinds))
		for k, v := range h.errKinds {
			st.ErrorKinds[k] = int64(v)
		}
	}
	if h.n > 0 {
		st.MeanUS = (h.sum / time.Duration(h.n)).Microseconds()
	}
	// quantileUS takes no lock itself; counts are stable under h.mu here.
	st.P50US = h.quantileUS(0.50)
	st.P95US = h.quantileUS(0.95)
	st.P99US = h.quantileUS(0.99)
	return st
}

package scenario

import (
	"errors"
	"strings"
	"testing"
)

// validDoc is a minimal well-formed scenario document; the validation table
// below perturbs one field at a time.
const validDoc = `{
  "version": 1,
  "seed": 7,
  "corpus": {
    "tables": 4,
    "recipes": [{"kind": "unionable", "row_overlap": 0.5}]
  },
  "workload": {
    "target_qps": 50,
    "duration_ms": 100,
    "mix": {"ingest": 1, "search": 1, "match": 1}
  }
}`

func TestParseValid(t *testing.T) {
	s, err := Parse(strings.NewReader(validDoc))
	if err != nil {
		t.Fatalf("Parse(valid) = %v", err)
	}
	// Defaults applied after validation.
	if s.Name != "unnamed" {
		t.Errorf("Name = %q, want default %q", s.Name, "unnamed")
	}
	if len(s.Corpus.Sources) == 0 {
		t.Error("Sources not defaulted")
	}
	if s.Corpus.Rows != 120 || s.Workload.TopK != 10 || s.Workload.Workers != 8 {
		t.Errorf("defaults not applied: rows=%d top_k=%d workers=%d",
			s.Corpus.Rows, s.Workload.TopK, s.Workload.Workers)
	}
	if s.Workload.MatchMethod != "coma-schema" {
		t.Errorf("MatchMethod = %q", s.Workload.MatchMethod)
	}
	if s.Corpus.Recipes[0].Weight != 1 {
		t.Errorf("zero weight not defaulted to 1, got %v", s.Corpus.Recipes[0].Weight)
	}
}

// TestParseInvalid is the validation-first contract: every malformed
// document fails with its named sentinel, before any table is generated.
func TestParseInvalid(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		want error
	}{
		{"not json", `{"version": `, ErrParse},
		{"unknown top-level field", `{"version": 1, "sede": 7}`, ErrParse},
		{"unknown nested field", strings.Replace(validDoc, `"tables"`, `"tabels"`, 1), ErrParse},
		{"trailing document", validDoc + `{"version": 1}`, ErrParse},
		{"missing version", strings.Replace(validDoc, `"version": 1`, `"version": 0`, 1), ErrVersion},
		{"future version", strings.Replace(validDoc, `"version": 1`, `"version": 2`, 1), ErrVersion},
		{"zero seed", strings.Replace(validDoc, `"seed": 7`, `"seed": 0`, 1), ErrSeed},
		{"negative seed", strings.Replace(validDoc, `"seed": 7`, `"seed": -3`, 1), ErrSeed},
		{"zero tables", strings.Replace(validDoc, `"tables": 4`, `"tables": 0`, 1), ErrCorpus},
		{"negative skew", strings.Replace(validDoc, `"tables": 4`, `"tables": 4, "skew": -1`, 1), ErrCorpus},
		{"unknown source", strings.Replace(validDoc, `"tables": 4`, `"tables": 4, "sources": ["NotASource"]`, 1), ErrCorpus},
		{"empty recipes", strings.Replace(validDoc,
			`"recipes": [{"kind": "unionable", "row_overlap": 0.5}]`, `"recipes": []`, 1), ErrRecipes},
		{"unknown recipe kind", strings.Replace(validDoc, `"kind": "unionable"`, `"kind": "splittable"`, 1), ErrRecipes},
		{"negative weight", strings.Replace(validDoc, `"row_overlap": 0.5`, `"row_overlap": 0.5, "weight": -1`, 1), ErrRecipes},
		{"overlap out of range", strings.Replace(validDoc, `"row_overlap": 0.5`, `"row_overlap": 1.5`, 1), ErrRecipes},
		{"zero qps", strings.Replace(validDoc, `"target_qps": 50`, `"target_qps": 0`, 1), ErrQPS},
		{"negative qps", strings.Replace(validDoc, `"target_qps": 50`, `"target_qps": -10`, 1), ErrQPS},
		{"zero duration", strings.Replace(validDoc, `"duration_ms": 100`, `"duration_ms": 0`, 1), ErrDuration},
		{"negative duration", strings.Replace(validDoc, `"duration_ms": 100`, `"duration_ms": -5`, 1), ErrDuration},
		{"negative mix ratio", strings.Replace(validDoc,
			`"mix": {"ingest": 1, "search": 1, "match": 1}`, `"mix": {"ingest": -1, "search": 2, "match": 0}`, 1), ErrMix},
		{"mix sums to zero", strings.Replace(validDoc,
			`"mix": {"ingest": 1, "search": 1, "match": 1}`, `"mix": {"ingest": 0, "search": 0, "match": 0}`, 1), ErrMix},
		{"negative top-k", strings.Replace(validDoc, `"duration_ms": 100`, `"duration_ms": 100, "top_k": -1`, 1), ErrWorkload},
		{"negative workers", strings.Replace(validDoc, `"duration_ms": 100`, `"duration_ms": 100, "workers": -2`, 1), ErrWorkload},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, err := Parse(strings.NewReader(tc.doc))
			if err == nil {
				t.Fatalf("Parse accepted %s (got %+v)", tc.name, s)
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("Parse error = %v, want errors.Is(%v)", err, tc.want)
			}
		})
	}
}

func TestParseFileMissing(t *testing.T) {
	if _, err := ParseFile("testdata/does-not-exist.json"); err == nil {
		t.Fatal("ParseFile on a missing path succeeded")
	}
}

func TestSaltedSeedStreams(t *testing.T) {
	// Distinct labels must yield distinct streams under one seed, and the
	// derivation must be pure.
	if saltedSeed(42, "corpus") == saltedSeed(42, "ops") {
		t.Error("corpus and ops streams alias")
	}
	if saltedSeed(42, "ops") != saltedSeed(42, "ops") {
		t.Error("saltedSeed is not pure")
	}
	if saltedSeed(42, "ops") == saltedSeed(43, "ops") {
		t.Error("seed does not influence the stream")
	}
}

package scenario_test

import (
	"fmt"
	"log"

	"valentine/internal/scenario"
)

// Example walks the checked-in smoke scenario through the declarative
// lifecycle — parse, materialize, precompute the op stream — printing only
// facts the seeding contract fixes, so the output doubles as a regression
// check on the file itself.
func Example() {
	s, err := scenario.ParseFile("../../examples/scenarios/smoke.json")
	if err != nil {
		log.Fatal(err)
	}
	c, err := s.Materialize()
	if err != nil {
		log.Fatal(err)
	}
	ops := s.Ops(c)
	fmt.Printf("scenario %s: %d tables (%d pairs), %d churn\n",
		s.Name, len(c.Tables), len(c.Pairs), len(c.Churn))
	fmt.Printf("replay: %d ops at %.0f qps for %d ms\n",
		len(ops), s.Workload.TargetQPS, s.Workload.DurationMS)
	fmt.Printf("hashes stable: %v\n", c.Hash == mustHash(s) && scenario.OpsHash(ops) == scenario.OpsHash(s.Ops(c)))
	// Output:
	// scenario smoke: 12 tables (6 pairs), 6 churn
	// replay: 60 ops at 150 qps for 400 ms
	// hashes stable: true
}

// mustHash re-materializes the scenario and returns the corpus hash.
func mustHash(s *scenario.Scenario) string {
	c, err := s.Materialize()
	if err != nil {
		log.Fatal(err)
	}
	return c.Hash
}

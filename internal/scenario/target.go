package scenario

// The replay target: every operation goes over HTTP against a live
// internal/server instance — remote (an -addr the user points at) or
// in-process (a loopback listener started here). There is deliberately no
// direct-call shortcut: the point of the scenario engine is to measure the
// served path, JSON codec and batcher included.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"strconv"
	"time"

	"valentine/internal/discovery"
	"valentine/internal/server"
	"valentine/internal/table"
)

// StatusError is a non-2xx server response, preserved with its status code
// so callers can tell shed load (429) and not-ready (503) from hard
// failures, and honor the server's Retry-After hint.
type StatusError struct {
	Code       int
	Msg        string
	RetryAfter time.Duration
}

func (e *StatusError) Error() string { return e.Msg }

// Retryable reports whether the response asks the client to back off and
// try again rather than give up: shed load and not-ready states.
func (e *StatusError) Retryable() bool {
	return e.Code == http.StatusTooManyRequests || e.Code == http.StatusServiceUnavailable
}

// ErrorKind classifies a replay failure for the report's error taxonomy:
// "overloaded" (429, the server shed the op), "unavailable" (503,
// recovering or failed), "client" (other 4xx — a workload bug), "server"
// (other 5xx), "timeout" (context expired), "transport" (dial/read
// failures and everything else).
func ErrorKind(err error) string {
	var se *StatusError
	switch {
	case errors.As(err, &se):
		switch {
		case se.Code == http.StatusTooManyRequests:
			return "overloaded"
		case se.Code == http.StatusServiceUnavailable:
			return "unavailable"
		case se.Code >= 500:
			return "server"
		default:
			return "client"
		}
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return "timeout"
	default:
		return "transport"
	}
}

// Client replays operations against one server base URL.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient returns a replay client for the server at base
// (e.g. "http://127.0.0.1:8080"). workers sizes the connection pool.
func NewClient(base string, workers int) *Client {
	tr := &http.Transport{
		MaxIdleConns:        workers * 2,
		MaxIdleConnsPerHost: workers * 2,
	}
	return &Client{base: base, hc: &http.Client{Transport: tr}}
}

// wire form shared with internal/server's JSON API.
type wireColumn struct {
	Name   string   `json:"name"`
	Values []string `json:"values"`
}

type wireTable struct {
	Name    string       `json:"name,omitempty"`
	Columns []wireColumn `json:"columns"`
}

func toWire(t *table.Table) wireTable {
	w := wireTable{Name: t.Name, Columns: make([]wireColumn, len(t.Columns))}
	for i := range t.Columns {
		w.Columns[i] = wireColumn{Name: t.Columns[i].Name, Values: t.Columns[i].Values}
	}
	return w
}

// ProbeHit is one ranked search result of a probe query.
type ProbeHit struct {
	Table string  `json:"table"`
	Score float64 `json:"score"`
}

func (c *Client) post(ctx context.Context, path string, body, out any) error {
	return c.do(ctx, http.MethodPost, path, body, out)
}

func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			return err
		}
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, &buf)
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		se := &StatusError{
			Code: resp.StatusCode,
			Msg:  fmt.Sprintf("%s %s: status %d: %s", method, path, resp.StatusCode, msg),
		}
		if secs, perr := strconv.Atoi(resp.Header.Get("Retry-After")); perr == nil && secs > 0 {
			se.RetryAfter = time.Duration(secs) * time.Second
		}
		return se
	}
	if out != nil {
		return json.NewDecoder(resp.Body).Decode(out)
	}
	_, err = io.Copy(io.Discard, resp.Body)
	return err
}

// Backoff bounds for retryable responses: capped exponential with full
// jitter, so a thundering herd of shed clients decorrelates instead of
// re-spiking the queue in lockstep.
const (
	backoffFloor = 20 * time.Millisecond
	backoffCap   = time.Second
	maxAttempts  = 6
)

// doRetry is do plus the shed-load contract: 429 (queue full) and 503
// (recovering) responses are retried on a capped exponential backoff with
// jitter, honoring the server's Retry-After as the floor. Any other failure
// — and a retry budget exhausted — surfaces to the caller.
func (c *Client) doRetry(ctx context.Context, method, path string, body, out any) error {
	delay := backoffFloor
	var err error
	for attempt := 0; attempt < maxAttempts; attempt++ {
		err = c.do(ctx, method, path, body, out)
		var se *StatusError
		if err == nil || !errors.As(err, &se) || !se.Retryable() {
			return err
		}
		wait := time.Duration(rand.Int63n(int64(delay))) + delay/2 // jitter in [0.5, 1.5) × delay
		if se.RetryAfter > wait {
			wait = se.RetryAfter
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("scenario: giving up retries: %w (last: %v)", ctx.Err(), err)
		case <-time.After(wait):
		}
		if delay *= 2; delay > backoffCap {
			delay = backoffCap
		}
	}
	return err
}

// Upsert PUTs one table into the catalog, backing off and retrying when the
// server sheds it (429) or is still recovering (503).
func (c *Client) Upsert(ctx context.Context, t *table.Table) error {
	body := map[string]any{"columns": toWire(t).Columns}
	return c.doRetry(ctx, http.MethodPut, "/v1/tables/"+t.Name, body, nil)
}

// Search runs one top-k query and returns the ranked tables.
func (c *Client) Search(ctx context.Context, q *table.Table, k int) ([]ProbeHit, error) {
	body := map[string]any{"table": toWire(q), "mode": "join", "k": k}
	var resp struct {
		Results []ProbeHit `json:"results"`
	}
	if err := c.doRetry(ctx, http.MethodPost, "/v1/search", body, &resp); err != nil {
		return nil, err
	}
	return resp.Results, nil
}

// Match runs one pairwise match between two tables.
func (c *Client) Match(ctx context.Context, method string, src, tgt *table.Table) error {
	body := map[string]any{"source": toWire(src), "target": toWire(tgt), "method": method}
	return c.doRetry(ctx, http.MethodPost, "/v1/match", body, nil)
}

// WaitReady polls the server's health endpoint until it reports a serving
// state or the context expires — the remote-target handshake before a
// replay starts. "ok" and "degraded" are ready; "recovering" (startup WAL
// replay still running, answered with 503) keeps polling; "failed" aborts
// immediately — a server that refused its own log will not become ready by
// waiting.
func (c *Client) WaitReady(ctx context.Context) error {
	for {
		health, err := c.probeHealth(ctx)
		if err == nil {
			switch health.Status {
			case "ok", "degraded", "": // "": pre-state servers answer a bare ok body
				return nil
			case "failed":
				return fmt.Errorf("scenario: server at %s failed recovery: %s", c.base, health.Error)
			default:
				err = fmt.Errorf("server %s", health.Status)
			}
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("scenario: server at %s not ready: %w (last: %v)", c.base, ctx.Err(), err)
		case <-time.After(50 * time.Millisecond):
		}
	}
}

type healthBody struct {
	Status string `json:"status"`
	Error  string `json:"error"`
}

// probeHealth reads /v1/healthz, decoding the body whatever the status code
// — a recovering server answers 503 but still says why.
func (c *Client) probeHealth(ctx context.Context) (healthBody, error) {
	var health healthBody
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/healthz", nil)
	if err != nil {
		return health, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return health, err
	}
	defer resp.Body.Close()
	if derr := json.NewDecoder(resp.Body).Decode(&health); derr != nil && resp.StatusCode/100 != 2 {
		return health, fmt.Errorf("healthz: status %d", resp.StatusCode)
	}
	return health, nil
}

// InProcess is a loopback server.Server for self-contained replays.
type InProcess struct {
	// URL is the http://127.0.0.1:port base address.
	URL string
	srv *server.Server
	hs  *http.Server
	ln  net.Listener
	err chan error
}

// StartInProcess serves a fresh default-geometry catalog on a loopback
// listener. Close releases it.
func StartInProcess() (*InProcess, error) {
	return StartInProcessIndex(discovery.New(discovery.Options{}))
}

// StartInProcessIndex serves an existing catalog on a loopback listener.
func StartInProcessIndex(ix *discovery.Index) (*InProcess, error) {
	return StartInProcessConfig(server.Config{Index: ix})
}

// StartInProcessConfig serves a fully-configured server (WAL, snapshots,
// admission control included) on a loopback listener.
func StartInProcessConfig(cfg server.Config) (*InProcess, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	srv, err := server.New(cfg)
	if err != nil {
		ln.Close()
		return nil, err
	}
	p := &InProcess{
		URL: "http://" + ln.Addr().String(),
		srv: srv,
		hs:  &http.Server{Handler: srv.Handler()},
		ln:  ln,
		err: make(chan error, 1),
	}
	go func() { p.err <- p.hs.Serve(ln) }()
	return p, nil
}

// Index returns the served catalog (post-replay state inspection).
func (p *InProcess) Index() *discovery.Index { return p.srv.Index() }

// Close drains in-flight requests, flushes the ingest batcher, and stops
// the listener.
func (p *InProcess) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	shutdownErr := p.hs.Shutdown(ctx)
	if err := <-p.err; err != nil && err != http.ErrServerClosed {
		p.srv.Close()
		return err
	}
	if err := p.srv.Close(); err != nil {
		return err
	}
	return shutdownErr
}

package scenario

// The replay target: every operation goes over HTTP against a live
// internal/server instance — remote (an -addr the user points at) or
// in-process (a loopback listener started here). There is deliberately no
// direct-call shortcut: the point of the scenario engine is to measure the
// served path, JSON codec and batcher included.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"

	"valentine/internal/discovery"
	"valentine/internal/server"
	"valentine/internal/table"
)

// Client replays operations against one server base URL.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient returns a replay client for the server at base
// (e.g. "http://127.0.0.1:8080"). workers sizes the connection pool.
func NewClient(base string, workers int) *Client {
	tr := &http.Transport{
		MaxIdleConns:        workers * 2,
		MaxIdleConnsPerHost: workers * 2,
	}
	return &Client{base: base, hc: &http.Client{Transport: tr}}
}

// wire form shared with internal/server's JSON API.
type wireColumn struct {
	Name   string   `json:"name"`
	Values []string `json:"values"`
}

type wireTable struct {
	Name    string       `json:"name,omitempty"`
	Columns []wireColumn `json:"columns"`
}

func toWire(t *table.Table) wireTable {
	w := wireTable{Name: t.Name, Columns: make([]wireColumn, len(t.Columns))}
	for i := range t.Columns {
		w.Columns[i] = wireColumn{Name: t.Columns[i].Name, Values: t.Columns[i].Values}
	}
	return w
}

// ProbeHit is one ranked search result of a probe query.
type ProbeHit struct {
	Table string  `json:"table"`
	Score float64 `json:"score"`
}

func (c *Client) post(ctx context.Context, path string, body, out any) error {
	return c.do(ctx, http.MethodPost, path, body, out)
}

func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			return err
		}
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, &buf)
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("%s %s: status %d: %s", method, path, resp.StatusCode, msg)
	}
	if out != nil {
		return json.NewDecoder(resp.Body).Decode(out)
	}
	_, err = io.Copy(io.Discard, resp.Body)
	return err
}

// Upsert PUTs one table into the catalog.
func (c *Client) Upsert(ctx context.Context, t *table.Table) error {
	body := map[string]any{"columns": toWire(t).Columns}
	return c.do(ctx, http.MethodPut, "/v1/tables/"+t.Name, body, nil)
}

// Search runs one top-k query and returns the ranked tables.
func (c *Client) Search(ctx context.Context, q *table.Table, k int) ([]ProbeHit, error) {
	body := map[string]any{"table": toWire(q), "mode": "join", "k": k}
	var resp struct {
		Results []ProbeHit `json:"results"`
	}
	if err := c.post(ctx, "/v1/search", body, &resp); err != nil {
		return nil, err
	}
	return resp.Results, nil
}

// Match runs one pairwise match between two tables.
func (c *Client) Match(ctx context.Context, method string, src, tgt *table.Table) error {
	body := map[string]any{"source": toWire(src), "target": toWire(tgt), "method": method}
	return c.post(ctx, "/v1/match", body, nil)
}

// WaitReady polls the server's health endpoint until it answers or the
// context expires — the remote-target handshake before a replay starts.
func (c *Client) WaitReady(ctx context.Context) error {
	for {
		err := c.do(ctx, http.MethodGet, "/v1/healthz", nil, nil)
		if err == nil {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("scenario: server at %s not ready: %w (last: %v)", c.base, ctx.Err(), err)
		case <-time.After(50 * time.Millisecond):
		}
	}
}

// InProcess is a loopback server.Server for self-contained replays.
type InProcess struct {
	// URL is the http://127.0.0.1:port base address.
	URL string
	srv *server.Server
	hs  *http.Server
	ln  net.Listener
	err chan error
}

// StartInProcess serves a fresh default-geometry catalog on a loopback
// listener. Close releases it.
func StartInProcess() (*InProcess, error) {
	return StartInProcessIndex(discovery.New(discovery.Options{}))
}

// StartInProcessIndex serves an existing catalog on a loopback listener.
func StartInProcessIndex(ix *discovery.Index) (*InProcess, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	srv := server.New(server.Config{Index: ix})
	p := &InProcess{
		URL: "http://" + ln.Addr().String(),
		srv: srv,
		hs:  &http.Server{Handler: srv.Handler()},
		ln:  ln,
		err: make(chan error, 1),
	}
	go func() { p.err <- p.hs.Serve(ln) }()
	return p, nil
}

// Index returns the served catalog (post-replay state inspection).
func (p *InProcess) Index() *discovery.Index { return p.srv.Index() }

// Close drains in-flight requests, flushes the ingest batcher, and stops
// the listener.
func (p *InProcess) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	shutdownErr := p.hs.Shutdown(ctx)
	if err := <-p.err; err != nil && err != http.ErrServerClosed {
		p.srv.Close()
		return err
	}
	if err := p.srv.Close(); err != nil {
		return err
	}
	return shutdownErr
}

package scenario

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"sync"
	"time"
)

// ReportSchema versions the replay report (the benchreport "scenario"
// section embeds it).
const ReportSchema = 1

// Report is one replay's machine-readable result.
type Report struct {
	Schema   int    `json:"schema"`
	Scenario string `json:"scenario"`
	Seed     int64  `json:"seed"`

	Corpus CorpusInfo `json:"corpus"`

	// Ops and OpsHash pin the precomputed operation sequence.
	Ops     int    `json:"ops"`
	OpsHash string `json:"ops_hash"`

	// LoadMS is the corpus pre-load time (upserts before replay starts;
	// excluded from the endpoint histograms).
	LoadMS int64 `json:"load_ms"`

	TargetQPS   float64 `json:"target_qps"`
	AchievedQPS float64 `json:"achieved_qps"`
	DurationMS  int     `json:"duration_ms"`
	ElapsedMS   int64   `json:"elapsed_ms"`
	Workers     int     `json:"workers"`

	// CPUs and GOMAXPROCS qualify the latency numbers: a p99 measured on a
	// single-core runner is not comparable to one from a wide machine. Set
	// by Replay, informational only (Check does not validate them).
	CPUs       int `json:"cpus,omitempty"`
	GOMAXPROCS int `json:"gomaxprocs,omitempty"`

	// Endpoints maps op kind → latency histogram summary. Latencies are
	// open-loop: measured from each op's scheduled arrival, so queueing
	// behind a saturated server is charged to the server, not hidden.
	Endpoints map[string]EndpointStats `json:"endpoints"`
	// Errors is the total across endpoints; ErrorKinds is the same total
	// broken down by taxonomy (overloaded / unavailable / client / server /
	// timeout / transport), aggregated across endpoints.
	Errors     int64            `json:"errors"`
	ErrorKinds map[string]int64 `json:"error_kinds,omitempty"`

	// Probes are post-replay sequential top-k searches over a fixed subset
	// of pair source tables — the determinism anchor: same scenario + seed
	// ⇒ identical probe results, regardless of replay concurrency.
	Probes []ProbeResult `json:"probes"`
}

// CorpusInfo summarizes the materialized corpus in the report.
type CorpusInfo struct {
	Tables      int    `json:"tables"`
	Columns     int    `json:"columns"`
	Rows        int    `json:"rows"`
	ChurnTables int    `json:"churn_tables"`
	Hash        string `json:"hash"`
}

// ProbeResult is one probe query's ranked top-k.
type ProbeResult struct {
	Query string     `json:"query"`
	TopK  []ProbeHit `json:"top_k"`
}

// probeCount bounds the post-replay probe sweep.
const probeCount = 8

// Run materializes the scenario's corpus and replays its workload against
// addr (a live server's base URL), or against a fresh in-process server
// when addr is empty. It is the one-call form of Materialize + load +
// Replay + probes.
func Run(ctx context.Context, s *Scenario, addr string) (*Report, error) {
	c, err := s.Materialize()
	if err != nil {
		return nil, err
	}
	if addr == "" {
		p, err := StartInProcess()
		if err != nil {
			return nil, err
		}
		defer p.Close()
		addr = p.URL
	}
	cl := NewClient(addr, s.Workload.Workers)
	readyCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
	err = cl.WaitReady(readyCtx)
	cancel()
	if err != nil {
		return nil, err
	}
	return s.Replay(ctx, c, cl)
}

// Replay pre-loads the corpus, replays the op sequence open-loop, then
// runs the probe sweep. The target server must be reachable via cl.
func (s *Scenario) Replay(ctx context.Context, c *Corpus, cl *Client) (*Report, error) {
	rep := &Report{
		Schema:   ReportSchema,
		Scenario: s.Name,
		Seed:     s.Seed,
		Corpus: CorpusInfo{
			Tables:      len(c.Tables),
			Columns:     c.Columns,
			Rows:        c.Rows,
			ChurnTables: len(c.Churn),
			Hash:        c.Hash,
		},
		TargetQPS:  s.Workload.TargetQPS,
		DurationMS: s.Workload.DurationMS,
		Workers:    s.Workload.Workers,
		CPUs:       runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}

	// Pre-load the corpus through the served ingest path (workers in
	// parallel — the batcher coalesces them), timed separately from replay.
	loadStart := time.Now()
	if err := s.load(ctx, c, cl); err != nil {
		return nil, err
	}
	rep.LoadMS = time.Since(loadStart).Milliseconds()

	ops := s.Ops(c)
	rep.Ops = len(ops)
	rep.OpsHash = OpsHash(ops)

	elapsed, hists, err := s.runOps(ctx, c, cl, ops)
	if err != nil {
		return nil, err
	}
	rep.ElapsedMS = elapsed.Milliseconds()
	rep.Endpoints = make(map[string]EndpointStats, len(hists))
	for kind, h := range hists {
		st := h.stats()
		rep.Endpoints[string(kind)] = st
		rep.Errors += st.Errors
		for k, v := range st.ErrorKinds {
			if rep.ErrorKinds == nil {
				rep.ErrorKinds = make(map[string]int64)
			}
			rep.ErrorKinds[k] += v
		}
	}
	if elapsed > 0 {
		rep.AchievedQPS = float64(len(ops)) / elapsed.Seconds()
	}

	// Probe sweep: sequential, after every replay op completed, so the
	// catalog state probed is the deterministic final state.
	for _, ti := range c.probePairs(probeCount) {
		q := c.Tables[ti]
		hits, err := cl.Search(ctx, q, s.Workload.TopK)
		if err != nil {
			return nil, fmt.Errorf("scenario: probe %s: %w", q.Name, err)
		}
		rep.Probes = append(rep.Probes, ProbeResult{Query: q.Name, TopK: hits})
	}
	return rep, nil
}

// load upserts every corpus table, Workers at a time.
func (s *Scenario) load(ctx context.Context, c *Corpus, cl *Client) error {
	sem := make(chan struct{}, s.Workload.Workers)
	errc := make(chan error, len(c.Tables))
	var wg sync.WaitGroup
	for _, t := range c.Tables {
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			if err := cl.Upsert(ctx, t); err != nil {
				errc <- fmt.Errorf("scenario: loading %s: %w", t.Name, err)
			}
		}()
	}
	wg.Wait()
	close(errc)
	return <-errc
}

// timedOp carries an op with its scheduled (open-loop) arrival time.
type timedOp struct {
	op  Op
	due time.Time
}

// runOps replays the sequence open-loop: a dispatcher releases op i at
// start + i/QPS into a queue deep enough to never block (arrivals are
// independent of service times — no coordinated omission), and Workers
// workers drain it, recording latency from each op's scheduled arrival.
func (s *Scenario) runOps(ctx context.Context, c *Corpus, cl *Client, ops []Op) (time.Duration, map[OpKind]*hist, error) {
	hists := map[OpKind]*hist{OpIngest: {}, OpSearch: {}, OpMatch: {}}
	queue := make(chan timedOp, len(ops))
	var wg sync.WaitGroup
	for w := 0; w < s.Workload.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for to := range queue {
				h := hists[to.op.Kind]
				if err := s.execute(ctx, c, cl, to.op); err != nil {
					h.fail(ErrorKind(err))
					continue
				}
				h.observe(time.Since(to.due))
			}
		}()
	}

	interval := time.Duration(float64(time.Second) / s.Workload.TargetQPS)
	start := time.Now()
	var dispatchErr error
dispatch:
	for i, op := range ops {
		due := start.Add(time.Duration(i) * interval)
		if d := time.Until(due); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
				dispatchErr = ctx.Err()
				break dispatch
			}
		}
		queue <- timedOp{op: op, due: due}
	}
	close(queue)
	wg.Wait()
	elapsed := time.Since(start)
	if dispatchErr != nil {
		return elapsed, hists, fmt.Errorf("scenario: replay aborted: %w", dispatchErr)
	}
	// Drop kinds the mix never produced, so the report only carries
	// endpoints that actually served traffic.
	for kind, h := range hists {
		if h.n == 0 && h.errs == 0 {
			delete(hists, kind)
		}
	}
	return elapsed, hists, nil
}

// execute performs one op against the target.
func (s *Scenario) execute(ctx context.Context, c *Corpus, cl *Client, op Op) error {
	switch op.Kind {
	case OpIngest:
		return cl.Upsert(ctx, c.Churn[op.Index])
	case OpSearch:
		pair := c.Pairs[op.Index]
		_, err := cl.Search(ctx, c.Tables[pair.Source], s.Workload.TopK)
		return err
	default: // OpMatch
		pair := c.Pairs[op.Index]
		return cl.Match(ctx, s.Workload.MatchMethod, c.Tables[pair.Source], c.Tables[pair.Target])
	}
}

// Check validates a report's shape: the fields a trajectory reader relies
// on are present and the histograms are internally consistent (monotone
// quantiles, errors bounded by arrivals). It is the CI schema gate for the
// benchreport "scenario" section.
func (r *Report) Check() error {
	if r == nil {
		return fmt.Errorf("scenario report: missing")
	}
	if r.Schema != ReportSchema {
		return fmt.Errorf("scenario report: schema %d, want %d", r.Schema, ReportSchema)
	}
	if r.Scenario == "" {
		return fmt.Errorf("scenario report: empty scenario name")
	}
	if r.Seed <= 0 {
		return fmt.Errorf("scenario report: seed %d", r.Seed)
	}
	if len(r.Corpus.Hash) != 64 {
		return fmt.Errorf("scenario report: corpus hash %q is not a sha256 hex digest", r.Corpus.Hash)
	}
	if r.Corpus.Tables <= 0 || r.Corpus.Columns <= 0 {
		return fmt.Errorf("scenario report: empty corpus (%d tables, %d columns)",
			r.Corpus.Tables, r.Corpus.Columns)
	}
	if len(r.OpsHash) != 64 {
		return fmt.Errorf("scenario report: ops hash %q is not a sha256 hex digest", r.OpsHash)
	}
	if r.Ops <= 0 {
		return fmt.Errorf("scenario report: no ops replayed")
	}
	if r.TargetQPS <= 0 || r.AchievedQPS <= 0 {
		return fmt.Errorf("scenario report: qps target %v achieved %v", r.TargetQPS, r.AchievedQPS)
	}
	if r.ElapsedMS <= 0 {
		return fmt.Errorf("scenario report: elapsed %dms", r.ElapsedMS)
	}
	if len(r.Endpoints) == 0 {
		return fmt.Errorf("scenario report: no endpoint histograms")
	}
	var counted int64
	for name, ep := range r.Endpoints {
		if ep.Count < 0 || ep.Errors < 0 {
			return fmt.Errorf("scenario report: %s: negative counts", name)
		}
		if len(ep.ErrorKinds) > 0 {
			var kinds int64
			for k, v := range ep.ErrorKinds {
				if v <= 0 {
					return fmt.Errorf("scenario report: %s: error kind %q count %d", name, k, v)
				}
				kinds += v
			}
			if kinds != ep.Errors {
				return fmt.Errorf("scenario report: %s: error kinds sum to %d, errors %d",
					name, kinds, ep.Errors)
			}
		}
		if ep.Count > 0 {
			if ep.P50US <= 0 {
				return fmt.Errorf("scenario report: %s: p50 %dµs", name, ep.P50US)
			}
			if !(ep.P50US <= ep.P95US && ep.P95US <= ep.P99US && ep.P99US <= ep.MaxUS) {
				return fmt.Errorf("scenario report: %s: histogram not monotone: p50 %d p95 %d p99 %d max %d",
					name, ep.P50US, ep.P95US, ep.P99US, ep.MaxUS)
			}
			if ep.MeanUS <= 0 || ep.MeanUS > ep.MaxUS {
				return fmt.Errorf("scenario report: %s: mean %dµs outside (0, max %dµs]",
					name, ep.MeanUS, ep.MaxUS)
			}
		}
		counted += ep.Count + ep.Errors
	}
	if counted != int64(r.Ops) {
		return fmt.Errorf("scenario report: endpoints account for %d ops, sequence had %d",
			counted, r.Ops)
	}
	return nil
}

// WriteJSON renders the report indented, for -json files and diffs.
func (r *Report) WriteJSON() ([]byte, error) {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

package scenario

import (
	"testing"
)

const smokeFile = "../../examples/scenarios/smoke.json"

// smokeCorpusHash and smokeOpsHash are the golden digests of the checked-in
// smoke scenario. They pin the seeding contract end to end: any change to
// datagen pools, fabrication splitting, the corpus picker or the op stream
// shows up here as a byte-level diff, which is exactly when the scenario
// format version (or the golden) must be revisited deliberately.
const (
	smokeCorpusHash = "af6c54d67bdd837ec6e0467702576703a0aec267ccc51e64c1385e3f9913a779"
	smokeOpsHash    = "5945e2b397026e9911204d93fd340bad093c613fb9b305c8d88c332bc9a042cc"
)

func TestMaterializeGolden(t *testing.T) {
	s, err := ParseFile(smokeFile)
	if err != nil {
		t.Fatal(err)
	}
	c, err := s.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if c.Hash != smokeCorpusHash {
		t.Errorf("corpus hash = %s, want golden %s", c.Hash, smokeCorpusHash)
	}
	if got := OpsHash(s.Ops(c)); got != smokeOpsHash {
		t.Errorf("ops hash = %s, want golden %s", got, smokeOpsHash)
	}
	if len(c.Tables) != s.Corpus.Tables {
		t.Errorf("corpus has %d tables, want %d", len(c.Tables), s.Corpus.Tables)
	}
	if len(c.Churn) != s.Corpus.ChurnTables {
		t.Errorf("corpus has %d churn tables, want %d", len(c.Churn), s.Corpus.ChurnTables)
	}
}

// TestMaterializeDeterministic is the byte-level half of the determinism
// suite: two materializations of one scenario are identical, table by table,
// cell by cell — not merely hash-equal.
func TestMaterializeDeterministic(t *testing.T) {
	s1, err := ParseFile(smokeFile)
	if err != nil {
		t.Fatal(err)
	}
	s2, _ := ParseFile(smokeFile)
	c1, err := s1.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	c2, err := s2.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if c1.Hash != c2.Hash {
		t.Fatalf("hashes differ: %s vs %s", c1.Hash, c2.Hash)
	}
	for i := range c1.Tables {
		a, b := c1.Tables[i], c2.Tables[i]
		if a.Name != b.Name {
			t.Fatalf("table %d name %q vs %q", i, a.Name, b.Name)
		}
		for j := range a.Columns {
			ca, cb := &a.Columns[j], &b.Columns[j]
			if ca.Name != cb.Name {
				t.Fatalf("%s column %d name %q vs %q", a.Name, j, ca.Name, cb.Name)
			}
			for k := range ca.Values {
				if ca.Values[k] != cb.Values[k] {
					t.Fatalf("%s.%s[%d]: %q vs %q", a.Name, ca.Name, k, ca.Values[k], cb.Values[k])
				}
			}
		}
	}
	if len(c1.Pairs) != len(c2.Pairs) {
		t.Fatalf("pair counts differ: %d vs %d", len(c1.Pairs), len(c2.Pairs))
	}
	for i := range c1.Pairs {
		if c1.Pairs[i] != c2.Pairs[i] {
			t.Fatalf("pair %d differs: %+v vs %+v", i, c1.Pairs[i], c2.Pairs[i])
		}
	}
}

// TestOpsDeterministicAndMixed checks the op stream: deterministic in the
// seed, sized QPS×duration, indices in range, and every mixed kind present
// in a long enough stream.
func TestOpsDeterministicAndMixed(t *testing.T) {
	s, err := ParseFile(smokeFile)
	if err != nil {
		t.Fatal(err)
	}
	c, err := s.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	ops1, ops2 := s.Ops(c), s.Ops(c)
	if OpsHash(ops1) != OpsHash(ops2) {
		t.Fatal("op sequences differ across calls")
	}
	wantN := int(s.Workload.TargetQPS * float64(s.Workload.DurationMS) / 1000)
	if len(ops1) != wantN {
		t.Errorf("len(ops) = %d, want %d", len(ops1), wantN)
	}
	seen := map[OpKind]int{}
	for _, op := range ops1 {
		seen[op.Kind]++
		switch op.Kind {
		case OpIngest:
			if op.Index < 0 || op.Index >= len(c.Churn) {
				t.Fatalf("ingest index %d out of range [0,%d)", op.Index, len(c.Churn))
			}
		default:
			if op.Index < 0 || op.Index >= len(c.Pairs) {
				t.Fatalf("%s index %d out of range [0,%d)", op.Kind, op.Index, len(c.Pairs))
			}
		}
	}
	for _, kind := range []OpKind{OpIngest, OpSearch, OpMatch} {
		if seen[kind] == 0 {
			t.Errorf("mix produced no %s ops in %d draws", kind, len(ops1))
		}
	}
	// Changing the seed must change the stream.
	s.Seed++
	if OpsHash(s.Ops(c)) == OpsHash(ops1) {
		t.Error("op sequence unchanged after seed change")
	}
}

func TestProbePairsSpread(t *testing.T) {
	c := &Corpus{Pairs: make([]Pair, 6)}
	for i := range c.Pairs {
		c.Pairs[i] = Pair{Source: 2 * i, Target: 2*i + 1}
	}
	got := c.probePairs(3)
	if len(got) != 3 {
		t.Fatalf("probePairs(3) returned %d indices", len(got))
	}
	// Capped at the pair count when asked for more.
	if n := len(c.probePairs(100)); n != 6 {
		t.Errorf("probePairs(100) returned %d indices, want 6", n)
	}
}

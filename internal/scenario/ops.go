package scenario

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/rand"
)

// OpKind names one replay operation class; kinds double as the report's
// endpoint keys.
type OpKind string

const (
	// OpIngest upserts a churn table (PUT /v1/tables/{name}).
	OpIngest OpKind = "ingest"
	// OpSearch runs a top-k search with a pair's source table as the query
	// (POST /v1/search).
	OpSearch OpKind = "search"
	// OpMatch matches a pair's source against its target
	// (POST /v1/match).
	OpMatch OpKind = "match"
)

// Op is one precomputed replay operation. Index selects the payload:
// a churn table (ingest), or a corpus pair (search, match).
type Op struct {
	Kind  OpKind
	Index int
}

// Ops precomputes the scenario's full operation sequence against the
// corpus. The sequence depends only on (Seed, Workload, corpus shape) —
// never on timing — and its length is TargetQPS × Duration arrivals
// (at least one).
func (s *Scenario) Ops(c *Corpus) []Op {
	n := int(s.Workload.TargetQPS * float64(s.Workload.DurationMS) / 1000)
	if n < 1 {
		n = 1
	}
	mix := s.Workload.Mix
	weights := []float64{mix.Ingest, mix.Search, mix.Match}
	kinds := []OpKind{OpIngest, OpSearch, OpMatch}
	rng := rand.New(rand.NewSource(saltedSeed(s.Seed, "ops")))
	ops := make([]Op, n)
	for i := range ops {
		kind := kinds[weightedPick(rng, weights)]
		var idx int
		switch kind {
		case OpIngest:
			idx = rng.Intn(len(c.Churn))
		default:
			idx = rng.Intn(len(c.Pairs))
		}
		ops[i] = Op{Kind: kind, Index: idx}
	}
	return ops
}

// OpsHash pins an operation sequence: the hex SHA-256 of every op's kind
// and payload index. Equal scenario + seed ⇒ equal hash; the determinism
// suite asserts it across runs.
func OpsHash(ops []Op) string {
	h := sha256.New()
	for _, op := range ops {
		fmt.Fprintf(h, "%s:%d\n", op.Kind, op.Index)
	}
	return hex.EncodeToString(h.Sum(nil))
}

package main

// Serve-path measurement (-json "serve" section): search latency against a
// standing discovery catalog, idle and under continuous concurrent ingest —
// once on the live segmented copy-on-write catalog (searches pin an epoch
// snapshot, never waiting on writers) and once under the pre-PR-4 locking
// discipline (one global RWMutex, every write excluding every search),
// reproduced over the identical corpus and scoring work. The ratios land in
// BENCH_<n>.json so the trajectory records what the live catalog buys on
// the hardware that produced the file. On a single-core runner both
// under-ingest arms also pay pure CPU contention; the locked arm
// additionally pays lock exclusion, which is the architectural difference.

import (
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"valentine"
)

type jsonServe struct {
	CPUs          int `json:"cpus"`
	GOMAXPROCS    int `json:"gomaxprocs"`
	CorpusTables  int `json:"corpus_tables"`
	CorpusColumns int `json:"corpus_columns"`
	Searches      int `json:"searches_per_arm"`
	// IngestEveryUS is the pacing of the concurrent ingester: one upsert
	// (of a 2000-row table, profiled on ingest) per interval, the arrival
	// pattern of a live feed rather than a flat-out loop.
	IngestEveryUS int64 `json:"ingest_every_us"`

	IdleSearchUS    int64 `json:"idle_search_us"`
	IdleSearchMaxUS int64 `json:"idle_search_max_us"`

	LiveUnderIngestSearchUS    int64   `json:"live_under_ingest_search_us"`
	LiveUnderIngestSearchMaxUS int64   `json:"live_under_ingest_search_max_us"`
	LiveUnderIngestRatio       float64 `json:"live_under_ingest_ratio"`
	LiveIngested               int     `json:"live_ingested_tables"`

	LockedUnderIngestSearchUS    int64   `json:"globallock_under_ingest_search_us"`
	LockedUnderIngestSearchMaxUS int64   `json:"globallock_under_ingest_search_max_us"`
	LockedUnderIngestRatio       float64 `json:"globallock_under_ingest_ratio"`
	LockedIngested               int     `json:"globallock_ingested_tables"`
}

func serveVals(prefix string, lo, hi int) []string {
	out := make([]string, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, fmt.Sprintf("%s%05d", prefix, i))
	}
	return out
}

func serveTable(name string, i int) *valentine.Table {
	t := valentine.NewTable(name)
	t.AddColumn("cust", serveVals("u", i*7, i*7+400))
	t.AddColumn("town", serveVals("c", i*5, i*5+400))
	return t
}

// measureServe builds a 150-table catalog and times a fixed search workload
// in three arms: idle, under live-catalog ingest, and under ingest with the
// global-RWMutex discipline.
func measureServe() (*jsonServe, error) {
	const (
		corpus      = 150
		searches    = 200
		ingestEvery = 5 * time.Millisecond // paced feed, not a flat-out loop
		churnRows   = 2000                 // profiling cost a real ingest pays
	)
	out := &jsonServe{
		CPUs:          runtime.NumCPU(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Searches:      searches,
		IngestEveryUS: ingestEvery.Microseconds(),
	}

	build := func() (*valentine.DiscoveryIndex, error) {
		ix := valentine.NewDiscoveryIndex(valentine.DiscoveryOptions{})
		for i := 0; i < corpus; i++ {
			if err := ix.Add(serveTable(fmt.Sprintf("corpus%03d", i), i)); err != nil {
				return nil, err
			}
		}
		return ix, nil
	}
	query := valentine.NewTable("query")
	query.AddColumn("customer_id", serveVals("u", 0, 400))
	query.AddColumn("city", serveVals("c", 0, 400))
	churn := make([]*valentine.Table, 8)
	for i := range churn {
		t := valentine.NewTable(fmt.Sprintf("churn%02d", i))
		t.AddColumn("cust", serveVals("u", i*7, i*7+churnRows))
		t.AddColumn("town", serveVals("c", i*5, i*5+churnRows))
		churn[i] = t
	}

	// sweep times `searches` sequential searches, returning mean and max —
	// the max is where a blocking writer shows up as a stall.
	sweep := func(search func() error) (mean, max time.Duration, err error) {
		for i := 0; i < searches; i++ {
			start := time.Now()
			if err := search(); err != nil {
				return 0, 0, err
			}
			d := time.Since(start)
			mean += d
			if d > max {
				max = d
			}
		}
		return mean / searches, max, nil
	}
	// ingest upserts one churn table per pacing interval until stopped,
	// returning how many landed.
	ingest := func(upsert func(*valentine.Table) error) (stop func() (int, error)) {
		done := make(chan struct{})
		var (
			n   int
			err error
			wg  sync.WaitGroup
		)
		wg.Add(1)
		go func() {
			defer wg.Done()
			tick := time.NewTicker(ingestEvery)
			defer tick.Stop()
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				case <-tick.C:
				}
				if err = upsert(churn[i%len(churn)]); err != nil {
					return
				}
				n++
			}
		}()
		return func() (int, error) {
			close(done)
			wg.Wait()
			return n, err
		}
	}

	// Arm 1: idle.
	ix, err := build()
	if err != nil {
		return nil, err
	}
	searchOnce := func(ix *valentine.DiscoveryIndex) func() error {
		return func() error {
			_, err := ix.Search(query, valentine.DiscoverJoin, 5)
			return err
		}
	}
	out.CorpusTables, out.CorpusColumns = ix.NumTables(), ix.NumColumns()
	idle, idleMax, err := sweep(searchOnce(ix))
	if err != nil {
		return nil, err
	}
	out.IdleSearchUS = idle.Microseconds()
	out.IdleSearchMaxUS = idleMax.Microseconds()

	// Arm 2: the live catalog under ingest — searches read epoch snapshots.
	ix, err = build()
	if err != nil {
		return nil, err
	}
	stop := ingest(ix.Upsert)
	live, liveMax, err := sweep(searchOnce(ix))
	n, ierr := stop()
	ix.WaitCompaction()
	if err != nil {
		return nil, err
	}
	if ierr != nil {
		return nil, ierr
	}
	out.LiveUnderIngestSearchUS = live.Microseconds()
	out.LiveUnderIngestSearchMaxUS = liveMax.Microseconds()
	out.LiveIngested = n

	// Arm 3: the same catalog behind one global RWMutex — the pre-live
	// locking discipline, where each upsert excludes all searches. The old
	// AddProfiled computed profiles before taking its lock, so the baseline
	// profiles outside the exclusion window too: the contrast is the
	// locking architecture, never extra work smuggled under the lock.
	ix, err = build()
	if err != nil {
		return nil, err
	}
	var mu sync.RWMutex
	stop = ingest(func(t *valentine.Table) error {
		tp := valentine.ProfileTable(t)
		for i := 0; i < tp.NumColumns(); i++ {
			p := tp.Column(i)
			p.Signature(128) // the suite default, matching this catalog's geometry
			p.NameTokens()
			p.Distinct()
		}
		mu.Lock()
		defer mu.Unlock()
		return ix.UpsertProfiled(tp)
	})
	locked, lockedMax, err := sweep(func() error {
		mu.RLock()
		defer mu.RUnlock()
		_, err := ix.Search(query, valentine.DiscoverJoin, 5)
		return err
	})
	n, ierr = stop()
	ix.WaitCompaction()
	if err != nil {
		return nil, err
	}
	if ierr != nil {
		return nil, ierr
	}
	out.LockedUnderIngestSearchUS = locked.Microseconds()
	out.LockedUnderIngestSearchMaxUS = lockedMax.Microseconds()
	out.LockedIngested = n

	if idle > 0 {
		out.LiveUnderIngestRatio = float64(live) / float64(idle)
		out.LockedUnderIngestRatio = float64(locked) / float64(idle)
	}
	fmt.Fprintf(os.Stderr,
		"serve latency (%d cpus): idle %dµs (max %dµs); under ingest live %dµs (%.2fx, max %dµs) vs global-lock %dµs (%.2fx, max %dµs)\n",
		out.CPUs, out.IdleSearchUS, out.IdleSearchMaxUS,
		out.LiveUnderIngestSearchUS, out.LiveUnderIngestRatio, out.LiveUnderIngestSearchMaxUS,
		out.LockedUnderIngestSearchUS, out.LockedUnderIngestRatio, out.LockedUnderIngestSearchMaxUS)
	return out, nil
}

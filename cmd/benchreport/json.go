package main

// Machine-readable benchmark output (-json): alongside the prose tables,
// benchreport can write one JSON document with the per-run fabricated-pair
// results and per-method aggregates, so successive PRs can commit
// BENCH_<n>.json trajectory files and diff effectiveness/runtime over the
// repository's history.

import (
	"encoding/json"
	"os"
	"runtime"
	"sort"
	"time"

	"valentine/internal/experiment"
	"valentine/internal/scenario"
)

// jsonSchemaVersion guards readers against layout changes.
const jsonSchemaVersion = 1

type jsonReport struct {
	Schema      int    `json:"schema"`
	GeneratedAt string `json:"generated_at"`
	Rows        int    `json:"rows"`
	Seeds       int    `json:"seeds"`
	// CPUs and GOMAXPROCS qualify every runtime/latency number in the
	// document: a p99 from a single-core runner is not comparable to one
	// from a wide machine.
	CPUs       int          `json:"cpus"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	Methods    []jsonMethod `json:"methods"`
	// Engine records the concurrent execution engine's measured
	// parallel-vs-sequential wall-clock speedups on this machine (see
	// engine.go); absent when the measurement is skipped.
	Engine *jsonEngine `json:"engine,omitempty"`
	// Serve records search latency against the live catalog, idle vs under
	// concurrent ingest, against the global-lock baseline (see serve.go);
	// absent when the measurement is skipped.
	Serve *jsonServe `json:"serve,omitempty"`
	// Kernels records the scoring-kernel measurements: map-based vs interned
	// sorted-merge vs bitmap overlap, and raw vs shared-dictionary MinHash
	// (see kernels.go); absent when the measurement is skipped.
	Kernels *jsonKernels `json:"kernels,omitempty"`
	// Scenario records one declarative scenario replay against an in-process
	// server (see scenario.go): corpus hash, per-endpoint latency histograms,
	// achieved-vs-target QPS, probe top-k; absent when -scenario is off or
	// the replay fails.
	Scenario *scenario.Report `json:"scenario,omitempty"`
	// Cascade records the query planner's bound-then-refine cascade against
	// the full-fidelity path on a skewed discovery corpus — equal top-k
	// verified, mean/p50/p99 latency per arm (see cascade.go); absent when
	// the measurement is skipped.
	Cascade *jsonCascade `json:"cascade,omitempty"`
	// Segments records the sealed-segment persistence formats head to head —
	// v1 gob decode vs v2 columnar mmap: snapshot bytes, cold-restart
	// latency, verified-identical search latency, and the zero-alloc kernel
	// probe against mapped sets (see segments.go); absent when the
	// measurement is skipped.
	Segments *jsonSegments `json:"segments,omitempty"`
	// Durability records the write-ahead log's cost/recovery profile —
	// acked-ingest latency per fsync policy (always/batch/none) and recovery
	// time as a function of surviving WAL length, with every acked batch
	// verified present after replay (see durability.go); absent when the
	// measurement is skipped.
	Durability *jsonDurability `json:"durability,omitempty"`
	Runs       []jsonRun       `json:"runs"`
}

type jsonMethod struct {
	Method       string  `json:"method"`
	Pairs        int     `json:"pairs"`
	MeanRecall   float64 `json:"mean_recall"`
	AvgRuntimeUS int64   `json:"avg_runtime_us"`
}

type jsonRun struct {
	Method    string  `json:"method"`
	Params    string  `json:"params"`
	Pair      string  `json:"pair"`
	Scenario  string  `json:"scenario"`
	Variant   string  `json:"variant"`
	Recall    float64 `json:"recall"`
	RuntimeUS int64   `json:"runtime_us"`
	Error     string  `json:"error,omitempty"`
}

// buildJSONReport converts fabricated-pair results into the trajectory
// document. Results are already deterministically sorted by the runner.
func buildJSONReport(rows, seeds int, rs []experiment.Result) jsonReport {
	rep := jsonReport{
		Schema:      jsonSchemaVersion,
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Rows:        rows,
		Seeds:       seeds,
		CPUs:        runtime.NumCPU(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Runs:        make([]jsonRun, 0, len(rs)),
	}
	counts := make(map[string]int)
	for _, r := range rs {
		run := jsonRun{
			Method:    r.Method,
			Params:    r.Params.Key(),
			Pair:      r.Pair,
			Scenario:  r.Scenario,
			Variant:   r.Variant,
			Recall:    r.Recall,
			RuntimeUS: r.Runtime.Microseconds(),
		}
		if r.Err != nil {
			run.Error = r.Err.Error()
		} else {
			counts[r.Method]++
		}
		rep.Runs = append(rep.Runs, run)
	}
	recall := experiment.MeanRecall(rs)
	runtime := experiment.AverageRuntime(rs)
	methods := make([]string, 0, len(counts))
	for m := range counts {
		methods = append(methods, m)
	}
	sort.Strings(methods)
	for _, m := range methods {
		rep.Methods = append(rep.Methods, jsonMethod{
			Method:       m,
			Pairs:        counts[m],
			MeanRecall:   recall[m],
			AvgRuntimeUS: runtime[m].Microseconds(),
		})
	}
	return rep
}

// writeJSONReport writes the document to path, indented for reviewable
// diffs between committed BENCH_*.json files.
func writeJSONReport(path string, rep jsonReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

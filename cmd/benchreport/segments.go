package main

// Segments measurement (-segments / -json "segments" section): cold-restart
// latency and served-search throughput of the v1 gob snapshot encoding vs
// the v2 columnar mmap-backed encoding, on one deterministic catalog saved
// in both formats. Every query is answered by both loaded catalogs and the
// results are checked identical before any timing counts — the zero-copy
// path must never buy speed with a different answer — and the interned-set
// kernels are probed against the mapped segments to pin the zero-alloc
// contract in the trajectory file.

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"testing"
	"time"

	"valentine/internal/discovery"
	"valentine/internal/intern"
	"valentine/internal/table"
)

type jsonSegments struct {
	// CPUs and GOMAXPROCS qualify the latencies.
	CPUs       int `json:"cpus"`
	GOMAXPROCS int `json:"gomaxprocs"`
	// Catalog shape.
	Tables         int   `json:"tables"`
	Columns        int   `json:"columns"`
	Rows           int   `json:"rows"`
	SealedSegments int   `json:"sealed_segments"`
	V1Bytes        int64 `json:"v1_bytes"`
	V2Bytes        int64 `json:"v2_bytes"`
	// Cold-restart wall latency per LoadSnapshot, microseconds.
	LoadReps     int   `json:"load_reps"`
	V1LoadMeanUS int64 `json:"v1_load_mean_us"`
	V1LoadP50US  int64 `json:"v1_load_p50_us"`
	V1LoadP99US  int64 `json:"v1_load_p99_us"`
	V2LoadMeanUS int64 `json:"v2_load_mean_us"`
	V2LoadP50US  int64 `json:"v2_load_p50_us"`
	V2LoadP99US  int64 `json:"v2_load_p99_us"`
	// RestartSpeedup is v1 mean load over v2 mean load: how much faster a
	// crashed server is answering again on the columnar format.
	RestartSpeedup float64 `json:"restart_speedup"`
	// Search latency over the loaded catalogs, microseconds per query.
	SearchQueries  int   `json:"search_queries"`
	SearchReps     int   `json:"search_reps"`
	V1SearchMeanUS int64 `json:"v1_search_mean_us"`
	V2SearchMeanUS int64 `json:"v2_search_mean_us"`
	// VerifiedQueries counts queries whose join and union results were
	// checked bit-identical across the v1-loaded and v2-mapped catalogs;
	// measureSegments fails unless every query verifies.
	VerifiedQueries int `json:"verified_queries"`
	// MappedProbeAllocs is testing.AllocsPerRun over the interned-set
	// kernels reading a mapped segment's column sets; must be 0.
	MappedProbeAllocs float64 `json:"mapped_probe_allocs"`
}

// segmentsCatalog builds the deterministic catalog: drifting value ranges
// over a shared vocabulary, so searches have a real ranking to preserve.
func segmentsCatalog(tables, cols, rows int) *discovery.Index {
	ix := discovery.New(discovery.Options{SealAfter: 16})
	greek := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta"}
	for i := 0; i < tables; i++ {
		t := table.New(fmt.Sprintf("seg%03d", i))
		for c := 0; c < cols; c++ {
			vals := make([]string, rows)
			// Deterministic arithmetic (no rng): each column walks a
			// drifting slice of the shared value space with a stride that
			// varies per table and column.
			lo := i*7 + c*150
			for r := range vals {
				vals[r] = fmt.Sprintf("val-%05d", lo+(r*(1+c)+i)%220)
			}
			t.AddColumn(fmt.Sprintf("%s %d", greek[c%len(greek)], c), vals)
		}
		if err := ix.Add(t); err != nil {
			panic(err) // deterministic corpus with unique names: cannot fail
		}
	}
	ix.WaitCompaction()
	return ix
}

// segmentsQueries builds probe tables spanning different regions of the
// catalog's value space.
func segmentsQueries(n, rows int) []*table.Table {
	out := make([]*table.Table, n)
	for qi := 0; qi < n; qi++ {
		q := table.New(fmt.Sprintf("q%d", qi))
		vals := make([]string, rows)
		lo := qi * 300
		for r := range vals {
			vals[r] = fmt.Sprintf("val-%05d", lo+r*2)
		}
		q.AddColumn("alpha 0", vals)
		out[qi] = q
	}
	return out
}

func dirBytes(dir string) (int64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	var total int64
	for _, e := range entries {
		if fi, err := e.Info(); err == nil && !fi.IsDir() {
			total += fi.Size()
		}
	}
	return total, nil
}

// measureSegments saves the catalog in both formats, times cold restarts
// and searches, verifies cross-format exactness, and probes the kernels on
// mapped sets. Any divergence or mapped-probe allocation is an error, not a
// number to report.
func measureSegments() (*jsonSegments, error) {
	const (
		tables   = 600
		cols     = 4
		rows     = 100
		loadReps = 15
		queries  = 8
		reps     = 10
		topK     = 10
	)
	ix := segmentsCatalog(tables, cols, rows)
	st := ix.Stats()

	base, err := os.MkdirTemp("", "benchreport-segments-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(base)
	dirV1 := filepath.Join(base, "v1")
	dirV2 := filepath.Join(base, "v2")
	if err := ix.SaveSnapshotFormat(dirV1, discovery.SegmentFormatV1); err != nil {
		return nil, fmt.Errorf("segments section: saving v1 snapshot: %w", err)
	}
	if err := ix.SaveSnapshotFormat(dirV2, discovery.SegmentFormatV2); err != nil {
		return nil, fmt.Errorf("segments section: saving v2 snapshot: %w", err)
	}
	out := &jsonSegments{
		CPUs: runtime.NumCPU(), GOMAXPROCS: runtime.GOMAXPROCS(0),
		Tables: st.Tables, Columns: st.Columns, Rows: rows,
		SealedSegments: st.SealedSegments,
		LoadReps:       loadReps, SearchQueries: queries, SearchReps: reps,
	}
	if out.V1Bytes, err = dirBytes(dirV1); err != nil {
		return nil, err
	}
	if out.V2Bytes, err = dirBytes(dirV2); err != nil {
		return nil, err
	}

	// Cold restarts: every rep pays the full LoadSnapshot (gob decode for
	// v1, header validation + mmap for v2). The file bytes sit in the OS
	// page cache either way — deliberately, since that is exactly the state
	// of a server restarting on a warm machine.
	var v1Ds, v2Ds []time.Duration
	var ixV1, ixV2 *discovery.Index
	for rep := 0; rep < loadReps; rep++ {
		if ixV1 != nil {
			ixV1.Close()
			ixV2.Close()
		}
		start := time.Now()
		ixV1, err = discovery.LoadSnapshot(dirV1)
		v1Ds = append(v1Ds, time.Since(start))
		if err != nil {
			return nil, fmt.Errorf("segments section: loading v1 snapshot: %w", err)
		}
		start = time.Now()
		ixV2, err = discovery.LoadSnapshot(dirV2)
		v2Ds = append(v2Ds, time.Since(start))
		if err != nil {
			return nil, fmt.Errorf("segments section: loading v2 snapshot: %w", err)
		}
	}
	defer ixV1.Close()
	defer ixV2.Close()
	out.V1LoadMeanUS, out.V1LoadP50US, out.V1LoadP99US = latencySummary(v1Ds)
	out.V2LoadMeanUS, out.V2LoadP50US, out.V2LoadP99US = latencySummary(v2Ds)
	if out.V2LoadMeanUS > 0 {
		out.RestartSpeedup = float64(out.V1LoadMeanUS) / float64(out.V2LoadMeanUS)
	}

	// Search both arms; identical results are the gate for the timings.
	var v1Search, v2Search []time.Duration
	for _, q := range segmentsQueries(queries, rows) {
		for _, mode := range []discovery.Mode{discovery.ModeJoin, discovery.ModeUnion} {
			start := time.Now()
			want, err := ixV1.Search(q, mode, topK)
			v1Search = append(v1Search, time.Since(start))
			if err != nil {
				return nil, fmt.Errorf("segments section: v1 search %s/%s: %w", q.Name, mode, err)
			}
			start = time.Now()
			got, err := ixV2.Search(q, mode, topK)
			v2Search = append(v2Search, time.Since(start))
			if err != nil {
				return nil, fmt.Errorf("segments section: v2 search %s/%s: %w", q.Name, mode, err)
			}
			if !reflect.DeepEqual(got, want) {
				return nil, fmt.Errorf("segments section: %s/%s diverged between formats:\n v1 %+v\n v2 %+v",
					q.Name, mode, want, got)
			}
		}
		out.VerifiedQueries++
		// Steady-state reps, timed the same way after the verified pass.
		for rep := 1; rep < reps; rep++ {
			for _, mode := range []discovery.Mode{discovery.ModeJoin, discovery.ModeUnion} {
				start := time.Now()
				if _, err := ixV1.Search(q, mode, topK); err != nil {
					return nil, err
				}
				v1Search = append(v1Search, time.Since(start))
				start = time.Now()
				if _, err := ixV2.Search(q, mode, topK); err != nil {
					return nil, err
				}
				v2Search = append(v2Search, time.Since(start))
			}
		}
	}
	out.V1SearchMeanUS, _, _ = latencySummary(v1Search)
	out.V2SearchMeanUS, _, _ = latencySummary(v2Search)

	// Kernel probes against the mapped catalog's interned sets: the whole
	// point of the columnar layout is that scoring reads file-backed memory
	// without materializing, so a single alloc here is a regression.
	sets := ixV2.InternedColumnSets("seg000")
	if len(sets) < 2 {
		return nil, fmt.Errorf("segments section: mapped catalog returned %d interned sets for seg000", len(sets))
	}
	out.MappedProbeAllocs = testing.AllocsPerRun(200, func() {
		intern.Jaccard(&sets[0], &sets[1])
		intern.Containment(&sets[0], &sets[1])
		intern.IntersectCount(&sets[0], &sets[1])
	})
	if out.MappedProbeAllocs != 0 {
		return nil, fmt.Errorf("segments section: kernel probes on mapped sets allocate %v per op, want 0", out.MappedProbeAllocs)
	}
	return out, nil
}

// formatSegments renders the section as prose, next to the paper tables.
func formatSegments(s *jsonSegments) string {
	out := fmt.Sprintf("Segments — v1 gob vs v2 columnar mmap snapshots (%d tables, %d columns, %d sealed segments)\n",
		s.Tables, s.Columns, s.SealedSegments)
	out += fmt.Sprintf("  bytes    v1=%d v2=%d, cpus=%d gomaxprocs=%d\n", s.V1Bytes, s.V2Bytes, s.CPUs, s.GOMAXPROCS)
	out += fmt.Sprintf("  restart  v1 mean=%dµs p50=%dµs p99=%dµs over %d loads\n",
		s.V1LoadMeanUS, s.V1LoadP50US, s.V1LoadP99US, s.LoadReps)
	out += fmt.Sprintf("           v2 mean=%dµs p50=%dµs p99=%dµs → %.1fx faster cold restart\n",
		s.V2LoadMeanUS, s.V2LoadP50US, s.V2LoadP99US, s.RestartSpeedup)
	out += fmt.Sprintf("  search   v1 mean=%dµs v2 mean=%dµs per query (%d queries × %d reps × 2 modes, all %d verified identical)\n",
		s.V1SearchMeanUS, s.V2SearchMeanUS, s.SearchQueries, s.SearchReps, s.VerifiedQueries)
	out += fmt.Sprintf("  kernels  %.0f allocs/op probing mapped interned sets\n", s.MappedProbeAllocs)
	return out
}

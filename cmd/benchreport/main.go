// Command benchreport regenerates every table and figure of the paper's
// evaluation section at a configurable scale and prints them as text.
//
// Usage:
//
//	benchreport -all                # everything (default)
//	benchreport -table1 -fig4       # selected artifacts
//	benchreport -rows 400 -seeds 3  # closer to paper scale
//	benchreport -json BENCH_2.json  # machine-readable trajectory file
//	benchreport -scenario -json out.json  # scenario replay section only (fast)
//	benchreport -cascade            # planner cascade vs full fidelity only
//	benchreport -segments           # v1 vs v2 snapshot restart + mapped search
//	benchreport -durability         # WAL ingest latency by fsync policy + recovery time
//	benchreport -check out.json     # validate a written scenario section
//	benchreport -check out.json -baseline BENCH_7.json  # + p99 regression gate
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"valentine/internal/core"
	"valentine/internal/datagen"
	"valentine/internal/experiment"
	"valentine/internal/report"
	"valentine/internal/scenario"
)

// detailedCSV, when set by -csv, receives every fabricated-pair result.
var detailedCSV string

// jsonOut, when set by -json, receives the machine-readable report (per-run
// fabricated-pair results plus per-method aggregates).
var jsonOut string

func main() {
	var (
		rows     = flag.Int("rows", 120, "rows per generated source table")
		seeds    = flag.Int("seeds", 1, "fabrication seeds per source")
		all      = flag.Bool("all", false, "produce every table and figure")
		table1   = flag.Bool("table1", false, "Table I: capability matrix")
		table2   = flag.Bool("table2", false, "Table II: parameter grids")
		table3   = flag.Bool("table3", false, "Table III: parameter sensitivity")
		table4   = flag.Bool("table4", false, "Table IV: Magellan and ING recall")
		table5   = flag.Bool("table5", false, "Table V: average runtimes")
		fig4     = flag.Bool("fig4", false, "Figure 4: schema-based methods")
		fig5     = flag.Bool("fig5", false, "Figure 5: instance-based methods")
		fig6     = flag.Bool("fig6", false, "Figure 6: hybrid methods")
		fig7     = flag.Bool("fig7", false, "Figure 7: WikiData")
		scenF    = flag.Bool("scenario", false, "scenario section: open-loop replay against an in-process server")
		scenFile = flag.String("scenario-file", defaultScenarioFile, "scenario file for -scenario")
		cascF    = flag.Bool("cascade", false, "cascade section: bound-then-refine planner vs full fidelity on a skewed corpus")
		segF     = flag.Bool("segments", false, "segments section: v1 gob vs v2 columnar mmap snapshots — cold restart, search conformance, mapped kernel allocs")
		durF     = flag.Bool("durability", false, "durability section: WAL acked-ingest latency per fsync policy, recovery time vs log length")
		checkF   = flag.String("check", "", "validate the scenario section of an existing -json file and exit")
		baseF    = flag.String("baseline", "", "with -check: fail if scenario p99s regress beyond -baseline-tolerance vs this trajectory file")
		baseTolF = flag.Float64("baseline-tolerance", 3.0, "with -baseline: allowed p99 ratio (checked/baseline) per endpoint")
		csvOut   = flag.String("csv", "", "also write detailed per-run results to this CSV file")
		jsonOutF = flag.String("json", "", "also write machine-readable results (runs + aggregates) to this JSON file")
	)
	flag.Parse()
	if *checkF != "" {
		if err := checkReport(*checkF, *baseF, *baseTolF); err != nil {
			fmt.Fprintln(os.Stderr, "benchreport:", err)
			os.Exit(1)
		}
		return
	}
	detailedCSV = *csvOut
	jsonOut = *jsonOutF
	if !(*table1 || *table2 || *table3 || *table4 || *table5 || *fig4 || *fig5 || *fig6 || *fig7 || *scenF || *cascF || *segF || *durF) {
		*all = true
	}
	if *all {
		*table1, *table2, *table3, *table4, *table5 = true, true, true, true, true
		*fig4, *fig5, *fig6, *fig7, *scenF, *cascF, *segF, *durF = true, true, true, true, true, true, true, true
	}
	if err := run(*rows, *seeds, *table1, *table2, *table3, *table4, *table5, *fig4, *fig5, *fig6, *fig7, *scenF, *cascF, *segF, *durF, *scenFile); err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
}

func run(rows, seeds int, table1, table2, table3, table4, table5, fig4, fig5, fig6, fig7, scen, casc, seg, dur bool, scenFile string) error {
	ctx := context.Background()
	cfg := report.Config{Rows: rows, Seeds: seeds}

	if table1 {
		fmt.Println(report.TableI())
	}
	if table2 {
		fmt.Println(report.TableII())
	}

	// The fabricated grid runs when a fabricated artifact needs it, or when a
	// -json trajectory is requested beyond the (cheap, self-contained)
	// scenario-only mode — `-scenario -json out.json` must stay fast enough
	// for a CI smoke leg.
	// Section-only runs (`-scenario -json …`, `-cascade -json …`) skip it so
	// they stay fast enough for CI smoke legs.
	var fabricated []experiment.Result
	needFab := fig4 || fig5 || fig6 || table5 || (jsonOut != "" && !scen && !casc && !seg && !dur)
	if needFab {
		fmt.Fprintf(os.Stderr, "running fabricated-pair experiments (rows=%d seeds=%d)...\n", rows, seeds)
		var err error
		fabricated, err = report.RunFabricated(ctx, cfg)
		if err != nil {
			return err
		}
		if detailedCSV != "" {
			f, err := os.Create(detailedCSV)
			if err != nil {
				return err
			}
			if err := experiment.WriteResultsCSV(f, fabricated); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "wrote %d detailed results to %s\n", len(fabricated), detailedCSV)
		}
	}
	if fig4 {
		fmt.Println(report.FormatFigure(
			"Figure 4 — schema-based methods, noisy schemata (min/median/max recall@GT)",
			report.Figure(fabricated, experiment.SchemaBasedMethods(), report.NoisySchemata)))
	}
	if fig5 {
		fmt.Println(report.FormatFigure(
			"Figure 5 — instance-based methods, noisy instances (min/median/max recall@GT)",
			report.Figure(fabricated, experiment.InstanceBasedMethods(), report.NoisyInstances)))
		fmt.Println(report.FormatFigure(
			"Figure 5 — instance-based methods, verbatim instances",
			report.Figure(fabricated, experiment.InstanceBasedMethods(), report.VerbatimInstances)))
	}
	if fig6 {
		fmt.Println(report.FormatFigure(
			"Figure 6 — hybrid methods (min/median/max recall@GT)",
			report.Figure(fabricated, experiment.HybridMethods(), nil)))
	}
	if fig7 {
		fmt.Fprintln(os.Stderr, "running WikiData experiments...")
		wiki, err := report.RunCurated(ctx, cfg, datagen.WikiData(datagen.Options{Rows: rows}))
		if err != nil {
			return err
		}
		fmt.Println(report.FormatFigure7(wiki))
	}
	if table3 {
		fmt.Fprintln(os.Stderr, "running Table III sensitivity grid search...")
		rows3, err := report.RunTableIII(ctx, cfg)
		if err != nil {
			return err
		}
		fmt.Println(report.FormatTableIII(rows3))
	}
	if table4 {
		fmt.Fprintln(os.Stderr, "running Magellan and ING experiments...")
		mag, err := report.RunCurated(ctx, cfg, datagen.Magellan(datagen.Options{Rows: rows}))
		if err != nil {
			return err
		}
		ing, err := report.RunCurated(ctx, cfg, []core.TablePair{
			datagen.ING1(datagen.Options{Rows: rows}),
			datagen.ING2(datagen.Options{Rows: rows}),
		})
		if err != nil {
			return err
		}
		fmt.Println(report.FormatTableIV(report.TableIV(mag, ing)))
	}
	if table5 {
		fmt.Println(report.FormatTableV(fabricated))
	}
	// The scenario replay is deterministic and fails hard: a scenario that
	// errors mid-replay is a regression, not a section to skip.
	var scenRep *scenario.Report
	if scen {
		fmt.Fprintf(os.Stderr, "replaying scenario %s against an in-process server...\n", scenFile)
		var err error
		scenRep, err = measureScenario(ctx, scenFile)
		if err != nil {
			return err
		}
		fmt.Println(formatScenario(scenRep))
	}
	// The cascade section fails hard too: its exactness check (cascade top-k
	// == full-fidelity top-k on every rep) is a correctness gate, not a
	// best-effort measurement.
	var cascRep *jsonCascade
	if casc {
		fmt.Fprintln(os.Stderr, "measuring cascade vs full-fidelity re-rank on a skewed corpus...")
		var err error
		cascRep, err = measureCascade(ctx)
		if err != nil {
			return err
		}
		fmt.Println(formatCascade(cascRep))
	}
	// The segments section fails hard as well: cross-format search divergence
	// or an allocating mapped-kernel probe is a correctness regression.
	var segRep *jsonSegments
	if seg {
		fmt.Fprintln(os.Stderr, "measuring v1 vs v2 snapshot restart and mapped-search conformance...")
		var err error
		segRep, err = measureSegments()
		if err != nil {
			return err
		}
		fmt.Println(formatSegments(segRep))
	}
	// The durability section fails hard: its acked-batches-survive-recovery
	// check at every fsync policy is the WAL's conformance gate, not a
	// best-effort number.
	var durRep *jsonDurability
	if dur {
		fmt.Fprintln(os.Stderr, "measuring WAL acked-ingest latency and recovery time...")
		var err error
		durRep, err = measureDurability()
		if err != nil {
			return err
		}
		fmt.Println(formatDurability(durRep))
	}
	if jsonOut != "" {
		rep := buildJSONReport(rows, seeds, fabricated)
		rep.Scenario = scenRep
		rep.Cascade = cascRep
		rep.Segments = segRep
		rep.Durability = durRep
		if needFab {
			// The engine section is best-effort: a measurement failure must
			// not discard the (much more expensive) run results above.
			fmt.Fprintln(os.Stderr, "measuring engine parallel-vs-sequential speedups...")
			if eng, err := measureEngine(); err != nil {
				fmt.Fprintf(os.Stderr, "benchreport: skipping engine section: %v\n", err)
			} else {
				rep.Engine = eng
			}
			// The serve section is best-effort for the same reason.
			fmt.Fprintln(os.Stderr, "measuring serve-path search latency under ingest...")
			if srv, err := measureServe(); err != nil {
				fmt.Fprintf(os.Stderr, "benchreport: skipping serve section: %v\n", err)
			} else {
				rep.Serve = srv
			}
			// So is the kernels section.
			fmt.Fprintln(os.Stderr, "measuring scoring-kernel speedups (map vs interned)...")
			if ker, err := measureKernels(); err != nil {
				fmt.Fprintf(os.Stderr, "benchreport: skipping kernels section: %v\n", err)
			} else {
				rep.Kernels = ker
			}
		}
		if err := writeJSONReport(jsonOut, rep); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %d run results to %s\n", len(fabricated), jsonOut)
	}
	return nil
}

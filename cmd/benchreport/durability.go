package main

// Durability measurement (-json "durability" section): what the write-ahead
// log costs and what recovery buys back. Two arms land in BENCH_<n>.json:
//
//   - Acked-ingest latency per fsync policy: the same profiled-upsert
//     workload appended through the WAL under "always" (fsync before every
//     ack), "batch" (background-interval fsync), and "none" (OS write-back),
//     with p50/p99/max of the full ack path — replay-form conversion, log
//     append, catalog apply. The spread between "always" and "none" is the
//     price of the strongest guarantee on this machine's disk.
//   - Recovery time as a function of surviving WAL length: cold restarts
//     replaying logs of increasing record counts, split into the open/scan
//     phase (CRC walk, torn-tail truncation) and the replay phase
//     (dictionary re-intern + batch apply).
//
// Both arms are conformance checks as much as measurements and fail hard:
// every acked batch must be present after recovery, at every policy (no
// crash is injected here — a clean close syncs — so even "none" must hold).

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"time"

	"valentine/internal/discovery"
	"valentine/internal/profile"
	"valentine/internal/table"
	"valentine/internal/wal"
)

type jsonDurability struct {
	CPUs       int                      `json:"cpus"`
	GOMAXPROCS int                      `json:"gomaxprocs"`
	Policies   []jsonDurabilityPolicy   `json:"policies"`
	Recovery   []jsonDurabilityRecovery `json:"recovery"`
}

// jsonDurabilityPolicy is one fsync-policy arm of the acked-ingest sweep.
type jsonDurabilityPolicy struct {
	Policy  string `json:"policy"`
	Appends int    `json:"appends"`
	MeanUS  int64  `json:"ingest_mean_us"`
	P50US   int64  `json:"ingest_p50_us"`
	P99US   int64  `json:"ingest_p99_us"`
	MaxUS   int64  `json:"ingest_max_us"`
	// WALBytes is the log size after the run — the same logical records at
	// every policy (sizes can differ by a few bytes: interning order shifts
	// gob varint widths), sizing the write amplification the policy pays for.
	WALBytes int64 `json:"wal_bytes"`
}

// jsonDurabilityRecovery is one point of the recovery-vs-WAL-length curve.
type jsonDurabilityRecovery struct {
	Records  int   `json:"wal_records"`
	WALBytes int64 `json:"wal_bytes"`
	// OpenUS is the open/scan phase: read, CRC-verify and frame-split the
	// whole log. ReplayUS is dictionary re-intern plus batch apply. TotalUS
	// is the sum — time from process start to a servable catalog, given an
	// empty snapshot underneath.
	OpenUS   int64 `json:"open_us"`
	ReplayUS int64 `json:"replay_us"`
	TotalUS  int64 `json:"total_us"`
}

// durTable builds the i-th workload table: one 60-value column drawn from a
// sliding window, so successive batches both intern new values and overlap.
func durTable(i int) *table.Table {
	return table.New(fmt.Sprintf("dur%04d", i)).
		AddColumn("k", durVals(i*7, i*7+60))
}

func durVals(lo, hi int) []string {
	out := make([]string, 0, hi-lo)
	for v := lo; v < hi; v++ {
		out = append(out, fmt.Sprintf("w%06d", v))
	}
	return out
}

// durAppend runs one acked ingest — replay-form conversion, WAL append,
// catalog apply — and returns the full ack-path latency.
func durAppend(ix *discovery.Index, l *wal.Log, i int) (time.Duration, error) {
	start := time.Now()
	lo := ix.Dict().Len()
	rop, err := ix.ReplayForm(discovery.Op{Upsert: profile.NewInterned(durTable(i), ix.Dict())})
	if err != nil {
		return 0, err
	}
	ops := []discovery.ReplayOp{rop}
	if _, err := l.Append(ops, lo, ix.Dict().Entries(lo, ix.Dict().Len())); err != nil {
		return 0, err
	}
	for _, e := range ix.ApplyReplayOps(ops) {
		if e != nil {
			return 0, e
		}
	}
	return time.Since(start), nil
}

// durQuantile reads the p-th quantile from sorted durations.
func durQuantile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(float64(len(sorted)) * p)
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// durRecover reopens a closed log and replays it into a fresh catalog,
// returning the phase timings and the recovered catalog.
func durRecover(path string) (openT, replayT time.Duration, ix *discovery.Index, err error) {
	ix = discovery.New(discovery.Options{})
	start := time.Now()
	res, err := wal.Open(path, ix.Lineage(), 0, wal.Options{Sync: wal.SyncNone})
	if err != nil {
		ix.Close()
		return 0, 0, nil, err
	}
	defer res.Log.Close()
	openT = time.Since(start)
	if !res.Fresh && res.Lineage != ix.Lineage() {
		if err := ix.AdoptLineage(res.Lineage); err != nil {
			ix.Close()
			return 0, 0, nil, err
		}
	}
	start = time.Now()
	if err := wal.ReplayInto(ix, res.Records); err != nil {
		ix.Close()
		return 0, 0, nil, err
	}
	return openT, time.Since(start), ix, nil
}

// durCheckRecovered fails unless the recovered catalog holds exactly the n
// workload tables that were acked — the section's conformance gate.
func durCheckRecovered(ix *discovery.Index, n int, arm string) error {
	tabs := ix.Tables()
	if len(tabs) != n {
		return fmt.Errorf("durability %s: recovered %d tables, acked %d", arm, len(tabs), n)
	}
	live := make(map[string]bool, len(tabs))
	for _, name := range tabs {
		live[name] = true
	}
	for i := 0; i < n; i++ {
		if name := fmt.Sprintf("dur%04d", i); !live[name] {
			return fmt.Errorf("durability %s: acked table %s missing after recovery", arm, name)
		}
	}
	return nil
}

// measureDurability runs both arms. Policy arms append `appends` batches
// each; the recovery curve replays logs of increasing lengths.
func measureDurability() (*jsonDurability, error) {
	const appends = 200
	out := &jsonDurability{
		CPUs:       runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	root, err := os.MkdirTemp("", "valentine-durability-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(root)

	// Arm 1: acked-ingest latency per fsync policy, identical workload.
	for _, policy := range []wal.SyncPolicy{wal.SyncAlways, wal.SyncBatch, wal.SyncNone} {
		dir := filepath.Join(root, "policy-"+string(policy))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
		walPath := filepath.Join(dir, "ops.wal")
		ix := discovery.New(discovery.Options{})
		res, err := wal.Open(walPath, ix.Lineage(), 0, wal.Options{Sync: policy})
		if err != nil {
			ix.Close()
			return nil, err
		}
		ds := make([]time.Duration, 0, appends)
		var mean time.Duration
		for i := 0; i < appends; i++ {
			d, err := durAppend(ix, res.Log, i)
			if err != nil {
				res.Log.Close()
				ix.Close()
				return nil, fmt.Errorf("durability %s append %d: %w", policy, i, err)
			}
			ds = append(ds, d)
			mean += d
		}
		walBytes := res.Log.Size()
		// A clean close syncs (except under "none", where the OS cache is
		// still coherent for our own re-read), so recovery must see
		// everything that was acked — at every policy.
		if err := res.Log.Close(); err != nil {
			ix.Close()
			return nil, err
		}
		ix.Close()
		_, _, rec, err := durRecover(walPath)
		if err != nil {
			return nil, fmt.Errorf("durability %s recovery: %w", policy, err)
		}
		err = durCheckRecovered(rec, appends, string(policy))
		rec.Close()
		if err != nil {
			return nil, err
		}
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		out.Policies = append(out.Policies, jsonDurabilityPolicy{
			Policy:   string(policy),
			Appends:  appends,
			MeanUS:   (mean / appends).Microseconds(),
			P50US:    durQuantile(ds, 0.50).Microseconds(),
			P99US:    durQuantile(ds, 0.99).Microseconds(),
			MaxUS:    ds[len(ds)-1].Microseconds(),
			WALBytes: walBytes,
		})
	}

	// Arm 2: recovery time vs surviving WAL length. Logs are built under
	// "none" (build speed is not under measurement) and closed cleanly.
	for _, n := range []int{64, 256, 1024} {
		dir := filepath.Join(root, fmt.Sprintf("recover-%d", n))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
		walPath := filepath.Join(dir, "ops.wal")
		ix := discovery.New(discovery.Options{})
		res, err := wal.Open(walPath, ix.Lineage(), 0, wal.Options{Sync: wal.SyncNone})
		if err != nil {
			ix.Close()
			return nil, err
		}
		for i := 0; i < n; i++ {
			if _, err := durAppend(ix, res.Log, i); err != nil {
				res.Log.Close()
				ix.Close()
				return nil, fmt.Errorf("durability recover-%d append %d: %w", n, i, err)
			}
		}
		walBytes := res.Log.Size()
		if err := res.Log.Close(); err != nil {
			ix.Close()
			return nil, err
		}
		ix.Close()
		openT, replayT, rec, err := durRecover(walPath)
		if err != nil {
			return nil, fmt.Errorf("durability recover-%d: %w", n, err)
		}
		err = durCheckRecovered(rec, n, fmt.Sprintf("recover-%d", n))
		rec.Close()
		if err != nil {
			return nil, err
		}
		out.Recovery = append(out.Recovery, jsonDurabilityRecovery{
			Records:  n,
			WALBytes: walBytes,
			OpenUS:   openT.Microseconds(),
			ReplayUS: replayT.Microseconds(),
			TotalUS:  (openT + replayT).Microseconds(),
		})
	}
	return out, nil
}

// formatDurability renders the section as prose.
func formatDurability(rep *jsonDurability) string {
	out := fmt.Sprintf("Durability — WAL acked-ingest latency by fsync policy, recovery vs log length (%d cpus)\n", rep.CPUs)
	for _, p := range rep.Policies {
		out += fmt.Sprintf("  fsync=%-6s n=%-4d mean=%dµs p50=%dµs p99=%dµs max=%dµs (wal %d bytes)\n",
			p.Policy, p.Appends, p.MeanUS, p.P50US, p.P99US, p.MaxUS, p.WALBytes)
	}
	for _, r := range rep.Recovery {
		out += fmt.Sprintf("  recover %4d records (%7d bytes): open+scan %dµs, replay %dµs, total %dµs\n",
			r.Records, r.WALBytes, r.OpenUS, r.ReplayUS, r.TotalUS)
	}
	return out
}

package main

// The scenario section (-scenario): replay a declarative scenario file
// (default examples/scenarios/smoke.json) against an in-process server and
// embed the full report — corpus hash, per-endpoint latency histograms,
// achieved QPS, probe top-k — in the -json trajectory document. The
// companion -check mode re-reads a written document and validates the
// section's schema, which is CI's guard that the emitted numbers stay
// well-formed.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"valentine/internal/scenario"
)

// defaultScenarioFile is the checked-in smoke scenario.
const defaultScenarioFile = "examples/scenarios/smoke.json"

// measureScenario replays one scenario file in-process.
func measureScenario(ctx context.Context, file string) (*scenario.Report, error) {
	s, err := scenario.ParseFile(file)
	if err != nil {
		return nil, err
	}
	rep, err := scenario.Run(ctx, s, "")
	if err != nil {
		return nil, err
	}
	if rep.Errors > 0 {
		return nil, fmt.Errorf("scenario %s: %d of %d ops failed", s.Name, rep.Errors, rep.Ops)
	}
	return rep, nil
}

// formatScenario renders the section as prose, next to the paper tables.
func formatScenario(rep *scenario.Report) string {
	out := fmt.Sprintf("Scenario %s (seed %d) — open-loop replay, in-process server\n",
		rep.Scenario, rep.Seed)
	out += fmt.Sprintf("  corpus %d tables / %d columns (hash %s…), load %d ms\n",
		rep.Corpus.Tables, rep.Corpus.Columns, rep.Corpus.Hash[:12], rep.LoadMS)
	out += fmt.Sprintf("  %d ops in %d ms: %.0f qps achieved of %.0f target, %d errors\n",
		rep.Ops, rep.ElapsedMS, rep.AchievedQPS, rep.TargetQPS, rep.Errors)
	for _, kind := range []string{"ingest", "search", "match"} {
		ep, ok := rep.Endpoints[kind]
		if !ok {
			continue
		}
		out += fmt.Sprintf("  %-7s n=%-6d p50=%dµs p95=%dµs p99=%dµs max=%dµs\n",
			kind, ep.Count, ep.P50US, ep.P95US, ep.P99US, ep.MaxUS)
	}
	return out
}

// checkReport validates the scenario section of a written -json document:
// present, schema-current, histograms internally consistent. It decodes
// only what it checks, so trajectory files may carry more than it knows.
// With baselinePath set it additionally gates on latency: every endpoint
// present in the baseline's scenario section must keep its p99 within
// tol × the baseline p99, and when the baseline carries a cascade section
// the planner's cascade p99s (the headline arm and the ensemble-with-tail
// arm) are held to the same ratio — CI's tripwire against serving-path and
// planner regressions.
func checkReport(path, baselinePath string, tol float64) error {
	doc, err := readTrajectoryDoc(path)
	if err != nil {
		return err
	}
	fmt.Printf("%s: scenario section ok — %s, %d ops, %d endpoints, hash %s…\n",
		path, doc.Scenario.Scenario, doc.Scenario.Ops, len(doc.Scenario.Endpoints), doc.Scenario.Corpus.Hash[:12])
	if baselinePath == "" {
		return nil
	}
	if tol <= 0 {
		return fmt.Errorf("-baseline-tolerance %v: must be positive", tol)
	}
	base, err := readTrajectoryDoc(baselinePath)
	if err != nil {
		return fmt.Errorf("baseline %w", err)
	}
	// Compare per endpoint kind, sorted for stable output. The tolerance is
	// deliberately loose (default 3x): shared CI runners are noisy, and the
	// gate exists to catch order-of-magnitude serving regressions, not to
	// re-run a microbenchmark.
	kinds := make([]string, 0, len(base.Scenario.Endpoints))
	for kind := range base.Scenario.Endpoints {
		kinds = append(kinds, kind)
	}
	sort.Strings(kinds)
	for _, kind := range kinds {
		bp99 := base.Scenario.Endpoints[kind].P99US
		ep, ok := doc.Scenario.Endpoints[kind]
		if !ok {
			return fmt.Errorf("%s: endpoint %q in baseline %s but missing here", path, kind, baselinePath)
		}
		if bp99 <= 0 {
			continue
		}
		ratio := float64(ep.P99US) / float64(bp99)
		if ratio > tol {
			return fmt.Errorf("%s: %s p99 %dµs is %.1fx baseline %dµs (tolerance %.1fx, baseline %s)",
				path, kind, ep.P99US, ratio, bp99, tol, baselinePath)
		}
		fmt.Printf("%s: %s p99 %dµs vs baseline %dµs (%.2fx, tolerance %.1fx) ok\n",
			path, kind, ep.P99US, bp99, ratio, tol)
	}
	if err := checkCascadeBaseline(path, baselinePath, tol, doc.Cascade, base.Cascade); err != nil {
		return err
	}
	return checkDurabilityBaseline(path, baselinePath, tol, doc.Durability, base.Durability)
}

// checkCascadeBaseline gates the cascade section's p99s against the
// baseline's. Baselines written before the section existed (or without
// -cascade) carry none and skip the gate; once a baseline has it, the
// checked document must too.
func checkCascadeBaseline(path, baselinePath string, tol float64, doc, base *jsonCascade) error {
	if base == nil {
		return nil
	}
	if doc == nil {
		return fmt.Errorf("%s: baseline %s has a cascade section but this document has none (was -cascade set when it was written?)", path, baselinePath)
	}
	type armCheck struct {
		label     string
		doc, base *jsonCascadeArm
	}
	arms := []armCheck{{"cascade", &doc.jsonCascadeArm, &base.jsonCascadeArm}}
	if base.Tail != nil {
		if doc.Tail == nil {
			return fmt.Errorf("%s: baseline %s has an ensemble-with-tail cascade arm but this document has none", path, baselinePath)
		}
		arms = append(arms, armCheck{"cascade-tail", doc.Tail, base.Tail})
	}
	for _, a := range arms {
		if a.base.CascadeP99US <= 0 {
			continue
		}
		ratio := float64(a.doc.CascadeP99US) / float64(a.base.CascadeP99US)
		if ratio > tol {
			return fmt.Errorf("%s: %s p99 %dµs is %.1fx baseline %dµs (tolerance %.1fx, baseline %s)",
				path, a.label, a.doc.CascadeP99US, ratio, a.base.CascadeP99US, tol, baselinePath)
		}
		fmt.Printf("%s: %s p99 %dµs vs baseline %dµs (%.2fx, tolerance %.1fx) ok\n",
			path, a.label, a.doc.CascadeP99US, a.base.CascadeP99US, ratio, tol)
	}
	return nil
}

// checkDurabilityBaseline gates the WAL section's acked-ingest p99 per
// fsync policy against the baseline's. As with the cascade gate, baselines
// written before the section existed skip it; once a baseline has it, the
// checked document must too — the durability leg silently dropping out of
// the smoke run should fail, not pass.
func checkDurabilityBaseline(path, baselinePath string, tol float64, doc, base *jsonDurability) error {
	if base == nil {
		return nil
	}
	if doc == nil {
		return fmt.Errorf("%s: baseline %s has a durability section but this document has none (was -durability set when it was written?)", path, baselinePath)
	}
	byPolicy := make(map[string]jsonDurabilityPolicy, len(doc.Policies))
	for _, p := range doc.Policies {
		byPolicy[p.Policy] = p
	}
	for _, bp := range base.Policies {
		p, ok := byPolicy[bp.Policy]
		if !ok {
			return fmt.Errorf("%s: fsync policy %q in baseline %s but missing here", path, bp.Policy, baselinePath)
		}
		if bp.P99US <= 0 {
			continue
		}
		ratio := float64(p.P99US) / float64(bp.P99US)
		if ratio > tol {
			return fmt.Errorf("%s: wal-ingest fsync=%s p99 %dµs is %.1fx baseline %dµs (tolerance %.1fx, baseline %s)",
				path, bp.Policy, p.P99US, ratio, bp.P99US, tol, baselinePath)
		}
		fmt.Printf("%s: wal-ingest fsync=%s p99 %dµs vs baseline %dµs (%.2fx, tolerance %.1fx) ok\n",
			path, bp.Policy, p.P99US, bp.P99US, ratio, tol)
	}
	return nil
}

// trajectoryDoc is the slice of a -json trajectory file the -check mode
// reads: the scenario section (required) plus the cascade and durability
// sections (optional, gated only when the baseline carries them).
type trajectoryDoc struct {
	Scenario   *scenario.Report
	Cascade    *jsonCascade
	Durability *jsonDurability
}

// readTrajectoryDoc loads one trajectory file's checked sections, validated.
func readTrajectoryDoc(path string) (*trajectoryDoc, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc struct {
		Schema     int              `json:"schema"`
		Scenario   *scenario.Report `json:"scenario"`
		Cascade    *jsonCascade     `json:"cascade"`
		Durability *jsonDurability  `json:"durability"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if doc.Schema != jsonSchemaVersion {
		return nil, fmt.Errorf("%s: document schema %d, want %d", path, doc.Schema, jsonSchemaVersion)
	}
	if doc.Scenario == nil {
		return nil, fmt.Errorf("%s: no scenario section (was -scenario set when it was written?)", path)
	}
	if err := doc.Scenario.Check(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &trajectoryDoc{Scenario: doc.Scenario, Cascade: doc.Cascade, Durability: doc.Durability}, nil
}

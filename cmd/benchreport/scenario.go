package main

// The scenario section (-scenario): replay a declarative scenario file
// (default examples/scenarios/smoke.json) against an in-process server and
// embed the full report — corpus hash, per-endpoint latency histograms,
// achieved QPS, probe top-k — in the -json trajectory document. The
// companion -check mode re-reads a written document and validates the
// section's schema, which is CI's guard that the emitted numbers stay
// well-formed.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"valentine/internal/scenario"
)

// defaultScenarioFile is the checked-in smoke scenario.
const defaultScenarioFile = "examples/scenarios/smoke.json"

// measureScenario replays one scenario file in-process.
func measureScenario(ctx context.Context, file string) (*scenario.Report, error) {
	s, err := scenario.ParseFile(file)
	if err != nil {
		return nil, err
	}
	rep, err := scenario.Run(ctx, s, "")
	if err != nil {
		return nil, err
	}
	if rep.Errors > 0 {
		return nil, fmt.Errorf("scenario %s: %d of %d ops failed", s.Name, rep.Errors, rep.Ops)
	}
	return rep, nil
}

// formatScenario renders the section as prose, next to the paper tables.
func formatScenario(rep *scenario.Report) string {
	out := fmt.Sprintf("Scenario %s (seed %d) — open-loop replay, in-process server\n",
		rep.Scenario, rep.Seed)
	out += fmt.Sprintf("  corpus %d tables / %d columns (hash %s…), load %d ms\n",
		rep.Corpus.Tables, rep.Corpus.Columns, rep.Corpus.Hash[:12], rep.LoadMS)
	out += fmt.Sprintf("  %d ops in %d ms: %.0f qps achieved of %.0f target, %d errors\n",
		rep.Ops, rep.ElapsedMS, rep.AchievedQPS, rep.TargetQPS, rep.Errors)
	for _, kind := range []string{"ingest", "search", "match"} {
		ep, ok := rep.Endpoints[kind]
		if !ok {
			continue
		}
		out += fmt.Sprintf("  %-7s n=%-6d p50=%dµs p95=%dµs p99=%dµs max=%dµs\n",
			kind, ep.Count, ep.P50US, ep.P95US, ep.P99US, ep.MaxUS)
	}
	return out
}

// checkReport validates the scenario section of a written -json document:
// present, schema-current, histograms internally consistent. It decodes
// only what it checks, so trajectory files may carry more than it knows.
// With baselinePath set it additionally gates on latency: every endpoint
// present in the baseline's scenario section must keep its p99 within
// tol × the baseline p99, CI's tripwire against serving-path regressions.
func checkReport(path, baselinePath string, tol float64) error {
	doc, err := readScenarioDoc(path)
	if err != nil {
		return err
	}
	fmt.Printf("%s: scenario section ok — %s, %d ops, %d endpoints, hash %s…\n",
		path, doc.Scenario, doc.Ops, len(doc.Endpoints), doc.Corpus.Hash[:12])
	if baselinePath == "" {
		return nil
	}
	if tol <= 0 {
		return fmt.Errorf("-baseline-tolerance %v: must be positive", tol)
	}
	base, err := readScenarioDoc(baselinePath)
	if err != nil {
		return fmt.Errorf("baseline %w", err)
	}
	// Compare per endpoint kind, sorted for stable output. The tolerance is
	// deliberately loose (default 3x): shared CI runners are noisy, and the
	// gate exists to catch order-of-magnitude serving regressions, not to
	// re-run a microbenchmark.
	kinds := make([]string, 0, len(base.Endpoints))
	for kind := range base.Endpoints {
		kinds = append(kinds, kind)
	}
	sort.Strings(kinds)
	for _, kind := range kinds {
		bp99 := base.Endpoints[kind].P99US
		ep, ok := doc.Endpoints[kind]
		if !ok {
			return fmt.Errorf("%s: endpoint %q in baseline %s but missing here", path, kind, baselinePath)
		}
		if bp99 <= 0 {
			continue
		}
		ratio := float64(ep.P99US) / float64(bp99)
		if ratio > tol {
			return fmt.Errorf("%s: %s p99 %dµs is %.1fx baseline %dµs (tolerance %.1fx, baseline %s)",
				path, kind, ep.P99US, ratio, bp99, tol, baselinePath)
		}
		fmt.Printf("%s: %s p99 %dµs vs baseline %dµs (%.2fx, tolerance %.1fx) ok\n",
			path, kind, ep.P99US, bp99, ratio, tol)
	}
	return nil
}

// readScenarioDoc loads one trajectory file's scenario section, validated.
func readScenarioDoc(path string) (*scenario.Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc struct {
		Schema   int              `json:"schema"`
		Scenario *scenario.Report `json:"scenario"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if doc.Schema != jsonSchemaVersion {
		return nil, fmt.Errorf("%s: document schema %d, want %d", path, doc.Schema, jsonSchemaVersion)
	}
	if doc.Scenario == nil {
		return nil, fmt.Errorf("%s: no scenario section (was -scenario set when it was written?)", path)
	}
	if err := doc.Scenario.Check(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return doc.Scenario, nil
}

package main

// Cascade measurement (-cascade / -json "cascade" section): the query
// planner's bound-then-refine discovery re-rank against the full-fidelity
// reference on a skewed corpus — a handful of genuinely related tables in a
// sea of junk with disjoint values and names, which is the regime served
// search actually sees. Every rep verifies the two arms return the same
// top-k (the planner's exactness contract) before its timing counts, so a
// speedup can never be bought with a wrong answer. Each arm starts from a
// cold profile store, mirroring the discover CLI: full fidelity warms every
// candidate, the cascade pays profiling lazily and only for candidates
// whose bound survives the cutoff.
//
// Three measurements share one corpus:
//
//   - the headline arm (coma-instance, the serving default) with full
//     latency percentiles, unchanged from earlier trajectories;
//   - one stats-instrumented cascade per expensive tail matcher
//     (similarity-flooding, cupid, semprop, embdi), whose per-matcher
//     bounded/pruned/refined counters and prune rates land in "matchers";
//   - the ensemble-with-tail arm ("tail"): every tail matcher fused with
//     the headline method, timed full vs cascade at the same top-k — the
//     p99 the CI baseline gate watches.

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"time"

	"valentine/internal/core"
	"valentine/internal/engine"
	"valentine/internal/experiment"
	"valentine/internal/matchers/ensemble"
	"valentine/internal/planner"
	"valentine/internal/profile"
	"valentine/internal/table"
)

// jsonCascadeArm is one full-vs-cascade comparison on the shared corpus.
// The headline arm embeds it (fields inline, keeping the trajectory schema
// of earlier BENCH files); the ensemble-with-tail arm nests it under
// "tail".
type jsonCascadeArm struct {
	Method string `json:"method"`
	Mode   string `json:"mode"`
	K      int    `json:"k"`
	// Candidates = Relevant + Junk tables per query.
	Candidates int `json:"candidates"`
	Relevant   int `json:"relevant"`
	Junk       int `json:"junk"`
	Reps       int `json:"reps"`
	// Per-query wall latency, microseconds.
	FullMeanUS    int64 `json:"full_mean_us"`
	FullP50US     int64 `json:"full_p50_us"`
	FullP99US     int64 `json:"full_p99_us"`
	CascadeMeanUS int64 `json:"cascade_mean_us"`
	CascadeP50US  int64 `json:"cascade_p50_us"`
	CascadeP99US  int64 `json:"cascade_p99_us"`
	// Speedups of the cascade arm over the full-fidelity arm.
	MeanSpeedup float64 `json:"mean_speedup"`
	P50Speedup  float64 `json:"p50_speedup"`
	P99Speedup  float64 `json:"p99_speedup"`
	// Pruned is the candidates cut by the bound-vs-cutoff check per query
	// (identical across reps: the corpus and cutoff are deterministic).
	Pruned int `json:"pruned"`
	// VerifiedReps counts reps whose cascade top-k was checked equal to the
	// full-fidelity top-k; measureArm fails unless it equals Reps.
	VerifiedReps int `json:"verified_reps"`
}

// jsonMatcherCascade is one tail matcher's planner counters on the shared
// corpus: how many candidates were bounded, how many of those the bound
// pruned outright, and how many were refined with the full matcher.
type jsonMatcherCascade struct {
	Bounded   int64   `json:"bounded"`
	Pruned    int64   `json:"pruned"`
	Refined   int64   `json:"refined"`
	PruneRate float64 `json:"prune_rate"`
}

type jsonCascade struct {
	// CPUs and GOMAXPROCS qualify the latencies: the container this report
	// ships from is typically single-core, so the arms are serial anyway.
	CPUs           int `json:"cpus"`
	GOMAXPROCS     int `json:"gomaxprocs"`
	jsonCascadeArm     // headline coma-instance arm, fields inline
	// Matchers holds per-tail-matcher cascade counters, keyed by matcher
	// name, each measured in that matcher's discriminating regime (see
	// measureTailMatchers). Every entry must show a nonzero prune rate — an
	// expensive matcher whose bound never fires has lost its reason to
	// exist.
	Matchers map[string]jsonMatcherCascade `json:"matchers"`
	// Tail is the ensemble-with-tail arm: the four expensive matchers fused
	// with the headline method, cascaded at the same top-k.
	Tail *jsonCascadeArm `json:"tail"`
}

// cascadeCorpus builds the skewed discovery corpus: relevant tables share
// the query's value vocabulary and column names with graded overlap, junk
// tables carry per-table value pools and column names. Deterministic, so
// every rep (and every run of benchreport) ranks the same corpus.
func cascadeCorpus(relevant, junk, cols, rows int) (*table.Table, []*table.Table) {
	rng := rand.New(rand.NewSource(7))
	draw := func(lo, span, n int) []string {
		vals := make([]string, n)
		for i := range vals {
			vals[i] = fmt.Sprintf("cust-%04d", lo+rng.Intn(span))
		}
		return vals
	}
	// Shared column names carry no digit tokens: junk column names embed
	// digits, and a stray shared token (even "0") would lift the name-token
	// bound of every junk table to 1.
	greek := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta",
		"eta", "theta", "iota", "kappa", "lambda", "mu"}
	fill := func(t *table.Table, prefix string, lo int) {
		for c := 0; c < cols; c++ {
			t.AddColumn(fmt.Sprintf("%s %s", prefix, greek[c%len(greek)]), draw(lo, 400, rows))
		}
	}
	query := table.New("query")
	fill(query, "shared", 0)

	corpus := make([]*table.Table, 0, relevant+junk)
	for i := 0; i < relevant; i++ {
		// Later relevant tables drift away from the query's value range, so
		// the top-k has a real ranking to get right, not a tie plateau.
		t := table.New(fmt.Sprintf("relevant%02d", i))
		fill(t, "shared", i*35)
		corpus = append(corpus, t)
	}
	for j := 0; j < junk; j++ {
		t := table.New(fmt.Sprintf("junk%03d", j))
		for c := 0; c < cols; c++ {
			vals := make([]string, rows)
			for r := range vals {
				vals[r] = fmt.Sprintf("junk%03d-%d-%d", j, c, rng.Intn(400))
			}
			t.AddColumn(fmt.Sprintf("junk%03d field%d", j, c), vals)
		}
		corpus = append(corpus, t)
	}
	return query, corpus
}

// sempropCorpus is the dense-value variant of the skewed corpus: SemProp's
// syntactic band fires only when minhash-signature Jaccard clears its
// threshold, and the shared corpus's sparse value pool (30 rows over 400
// values) keeps every pair below it — no scores, no cutoff, nothing to
// prune. Drawing the relevant tables from a dense drifting pool (span 50,
// drift 1/table) puts the corpus in the regime SemProp actually ranks,
// while junk keeps per-table pools whose disjoint signatures collapse the
// bound to zero.
func sempropCorpus(relevant, junk, cols, rows int) (*table.Table, []*table.Table) {
	rng := rand.New(rand.NewSource(7))
	draw := func(lo, span, n int) []string {
		vals := make([]string, n)
		for i := range vals {
			vals[i] = fmt.Sprintf("cust-%04d", lo+rng.Intn(span))
		}
		return vals
	}
	greek := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta",
		"eta", "theta", "iota", "kappa", "lambda", "mu"}
	fill := func(t *table.Table, lo int) {
		for c := 0; c < cols; c++ {
			t.AddColumn(fmt.Sprintf("shared %s", greek[c%len(greek)]), draw(lo, 50, rows))
		}
	}
	query := table.New("query")
	fill(query, 0)
	corpus := make([]*table.Table, 0, relevant+junk)
	for i := 0; i < relevant; i++ {
		t := table.New(fmt.Sprintf("relevant%02d", i))
		fill(t, i)
		corpus = append(corpus, t)
	}
	for j := 0; j < junk; j++ {
		t := table.New(fmt.Sprintf("junk%03d", j))
		for c := 0; c < cols; c++ {
			vals := make([]string, rows)
			for r := range vals {
				vals[r] = fmt.Sprintf("junk%03d-%d-%d", j, c, rng.Intn(400))
			}
			t.AddColumn(fmt.Sprintf("junk%03d field%d", j, c), vals)
		}
		corpus = append(corpus, t)
	}
	return query, corpus
}

// simfloodCorpus is the schema-shape variant: Similarity Flooding reads
// only names and types, and its fixpoint normalization divides every
// column-pair score by a table-level sum, so wide schemas dilute all
// scores — on the shared corpus the junk bound (≈0.30) sits above every
// relevant score (≈0.04) and nothing can prune. Its discriminating regime
// is the opposite shape: relevant tables with the query's exact schema
// (concentrated flood, scores at their ceiling) against junk whose many
// moderately-similar column names inflate the flood's normalizer — the
// bound's λ term — until the junk bound (≈0.037) drops below the relevant
// scores (≈0.042). Junk stays junk: no shared name tokens, no shared
// values.
func simfloodCorpus(relevant, junk, rows int) (*table.Table, []*table.Table) {
	const cols, junkCols = 8, 24
	rng := rand.New(rand.NewSource(7))
	greek := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta",
		"eta", "theta", "iota", "kappa", "lambda", "mu"}
	draw := func(n int) []string {
		vals := make([]string, n)
		for i := range vals {
			vals[i] = fmt.Sprintf("cust-%04d", rng.Intn(400))
		}
		return vals
	}
	query := table.New("query")
	for c := 0; c < cols; c++ {
		query.AddColumn(fmt.Sprintf("shared %s", greek[c]), draw(rows))
	}
	corpus := make([]*table.Table, 0, relevant+junk)
	for i := 0; i < relevant; i++ {
		t := table.New(fmt.Sprintf("relevant%02d", i))
		for c := 0; c < cols; c++ {
			t.AddColumn(fmt.Sprintf("shared %s", greek[c]), draw(rows))
		}
		corpus = append(corpus, t)
	}
	for j := 0; j < junk; j++ {
		t := table.New(fmt.Sprintf("junk%03d", j))
		for c := 0; c < junkCols; c++ {
			t.AddColumn(fmt.Sprintf("sharod %s j%02d", greek[c%len(greek)], c), draw(rows))
		}
		corpus = append(corpus, t)
	}
	return query, corpus
}

// Shared corpus and query shape across all three cascade measurements.
// Wide-but-short tables tilt the ratio toward matching: the matcher's
// per-candidate work is quadratic in columns (every column pair pays
// element construction, name distances and instance features) while the
// profiling the cascade's bounds force is linear, so the corpus shape
// controls how much a pruned candidate actually saves.
const (
	cascRelevant = 12
	cascJunk     = 150
	cascCols     = 8
	cascRows     = 30
	cascK        = 10
	cascMode     = "union"
)

// runCascadeArm times one rep of one arm from a cold profile store.
func runCascadeArm(ctx context.Context, m core.Matcher, query *table.Table, corpus []*table.Table, cascade bool) (time.Duration, *planner.RerankResult, error) {
	store := profile.NewStore()
	start := time.Now()
	cands := make([]planner.Candidate, len(corpus))
	for i, t := range corpus {
		cands[i] = planner.Candidate{Name: t.Name, Profile: store.Of(t)}
	}
	var rr *planner.RerankResult
	var rerr error
	if cascade {
		rr, rerr = planner.Rerank(ctx, m, store.Of(query), cands, cascMode, cascK)
	} else {
		store.Warm(corpus...)
		rr, rerr = planner.RerankFull(ctx, m, store.Of(query), cands, cascMode, cascK)
	}
	return time.Since(start), rr, rerr
}

// verifyRanked hard-fails on any top-k divergence — a wrong answer is a
// regression, not a section to skip.
func verifyRanked(label string, rep int, full, casc *planner.RerankResult) error {
	if len(full.Ranked) != len(casc.Ranked) {
		return fmt.Errorf("cascade section: %s rep %d: top-k sizes diverge (%d vs %d)",
			label, rep, len(full.Ranked), len(casc.Ranked))
	}
	for i := range full.Ranked {
		if full.Ranked[i] != casc.Ranked[i] {
			return fmt.Errorf("cascade section: %s rep %d: rank %d diverges: full %+v cascade %+v",
				label, rep, i, full.Ranked[i], casc.Ranked[i])
		}
	}
	return nil
}

// measureArm runs the full-vs-cascade comparison for one matcher,
// alternating arms each rep.
func measureArm(ctx context.Context, m core.Matcher, query *table.Table, corpus []*table.Table, reps int) (*jsonCascadeArm, error) {
	out := &jsonCascadeArm{
		Method: m.Name(), Mode: cascMode, K: cascK,
		Candidates: len(corpus), Relevant: cascRelevant, Junk: cascJunk, Reps: reps,
	}
	fullDs := make([]time.Duration, 0, reps)
	cascDs := make([]time.Duration, 0, reps)
	for rep := 0; rep < reps; rep++ {
		fullD, full, err := runCascadeArm(ctx, m, query, corpus, false)
		if err != nil {
			return nil, fmt.Errorf("cascade section: %s full-fidelity arm: %w", m.Name(), err)
		}
		cascD, casc, err := runCascadeArm(ctx, m, query, corpus, true)
		if err != nil {
			return nil, fmt.Errorf("cascade section: %s cascade arm: %w", m.Name(), err)
		}
		if err := verifyRanked(m.Name(), rep, full, casc); err != nil {
			return nil, err
		}
		out.VerifiedReps++
		out.Pruned = casc.Pruned
		fullDs = append(fullDs, fullD)
		cascDs = append(cascDs, cascD)
	}
	if out.Pruned == 0 {
		return nil, fmt.Errorf("cascade section: %s bounds pruned nothing on a %d-junk corpus", m.Name(), cascJunk)
	}

	out.FullMeanUS, out.FullP50US, out.FullP99US = latencySummary(fullDs)
	out.CascadeMeanUS, out.CascadeP50US, out.CascadeP99US = latencySummary(cascDs)
	if out.CascadeMeanUS > 0 {
		out.MeanSpeedup = float64(out.FullMeanUS) / float64(out.CascadeMeanUS)
	}
	if out.CascadeP50US > 0 {
		out.P50Speedup = float64(out.FullP50US) / float64(out.CascadeP50US)
	}
	if out.CascadeP99US > 0 {
		out.P99Speedup = float64(out.FullP99US) / float64(out.CascadeP99US)
	}
	return out, nil
}

// tailMethods are the expensive tail matchers whose admissible bounds the
// per-matcher counters and the ensemble-with-tail arm exercise.
var tailMethods = []string{
	experiment.MethodSimFlood,
	experiment.MethodCupid,
	experiment.MethodSemProp,
	experiment.MethodEmbDI,
}

// measureTailMatchers runs one stats-instrumented cascade per tail matcher
// and reports the planner's per-matcher counters. Each matcher is measured
// in the regime its bound signal discriminates — cupid (name tokens) and
// embdi (value bridging) read the shared corpus, simflood (schema shape)
// and semprop (value signatures) get the tailored variants above. Each run
// is verified against full fidelity once (the timing arms already hammer
// the conformance check; here the counters are the payload).
func measureTailMatchers(ctx context.Context, query *table.Table, corpus []*table.Table) (map[string]jsonMatcherCascade, error) {
	reg := experiment.NewRegistry()
	grids := experiment.QuickGrids()
	out := make(map[string]jsonMatcherCascade, len(tailMethods))
	for _, name := range tailMethods {
		var params core.Params
		if g := grids[name]; len(g) > 0 {
			params = g[0]
		}
		m, err := reg.New(name, params)
		if err != nil {
			return nil, err
		}
		query, corpus := query, corpus
		switch name {
		case experiment.MethodSimFlood:
			query, corpus = simfloodCorpus(cascRelevant, 40, cascRows)
		case experiment.MethodSemProp:
			query, corpus = sempropCorpus(cascRelevant, cascJunk, cascCols, cascRows)
		}
		_, full, err := runCascadeArm(ctx, m, query, corpus, false)
		if err != nil {
			return nil, fmt.Errorf("cascade section: %s full-fidelity arm: %w", name, err)
		}
		sctx, stats := engine.WithStats(ctx)
		_, casc, err := runCascadeArm(sctx, m, query, corpus, true)
		if err != nil {
			return nil, fmt.Errorf("cascade section: %s cascade arm: %w", name, err)
		}
		if err := verifyRanked(name, 0, full, casc); err != nil {
			return nil, err
		}
		ms, ok := stats.Snapshot().Matchers[m.Name()]
		if !ok || ms.Bounded == 0 {
			return nil, fmt.Errorf("cascade section: %s cascade recorded no bounded candidates", name)
		}
		if ms.Pruned == 0 {
			return nil, fmt.Errorf("cascade section: %s bound pruned nothing on a %d-junk corpus", name, cascJunk)
		}
		out[m.Name()] = jsonMatcherCascade{
			Bounded:   ms.Bounded,
			Pruned:    ms.Pruned,
			Refined:   ms.Refined,
			PruneRate: float64(ms.Pruned) / float64(ms.Bounded),
		}
	}
	return out, nil
}

// measureCascade runs all three cascade measurements on the shared corpus.
func measureCascade(ctx context.Context) (*jsonCascade, error) {
	const (
		reps = 20
		// The tail arm runs embdi (random-walk training per bridged
		// candidate) on every full-fidelity rep, so it gets fewer reps: its
		// job is the p99 gate ratio, not a latency distribution.
		tailReps = 5
	)
	query, corpus := cascadeCorpus(cascRelevant, cascJunk, cascCols, cascRows)
	reg := experiment.NewRegistry()
	m, err := reg.New(experiment.MethodComaInstance, nil)
	if err != nil {
		return nil, err
	}
	headline, err := measureArm(ctx, m, query, corpus, reps)
	if err != nil {
		return nil, err
	}
	out := &jsonCascade{
		CPUs: runtime.NumCPU(), GOMAXPROCS: runtime.GOMAXPROCS(0),
		jsonCascadeArm: *headline,
	}
	// Trajectory continuity: the headline arm keeps reporting the method
	// constant, as every earlier BENCH file did.
	out.Method = experiment.MethodComaInstance

	if out.Matchers, err = measureTailMatchers(ctx, query, corpus); err != nil {
		return nil, err
	}

	grids := experiment.QuickGrids()
	params := make(map[string]core.Params, len(tailMethods)+1)
	for _, name := range append([]string{experiment.MethodComaInstance}, tailMethods...) {
		if g := grids[name]; len(g) > 0 {
			params[name] = g[0]
		}
	}
	tail, err := ensemble.FromRegistry(reg, params,
		append([]string{experiment.MethodComaInstance}, tailMethods...), nil)
	if err != nil {
		return nil, err
	}
	if out.Tail, err = measureArm(ctx, tail, query, corpus, tailReps); err != nil {
		return nil, err
	}
	return out, nil
}

// latencySummary reduces one arm's rep latencies to mean/p50/p99 in µs.
func latencySummary(ds []time.Duration) (mean, p50, p99 int64) {
	sorted := make([]time.Duration, len(ds))
	copy(sorted, ds)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum time.Duration
	for _, d := range sorted {
		sum += d
	}
	pct := func(p float64) int64 {
		idx := int(math.Ceil(p*float64(len(sorted)))) - 1
		if idx < 0 {
			idx = 0
		}
		return sorted[idx].Microseconds()
	}
	return (sum / time.Duration(len(sorted))).Microseconds(), pct(0.50), pct(0.99)
}

// formatCascadeArm renders one arm's latency comparison.
func formatCascadeArm(c *jsonCascadeArm) string {
	out := fmt.Sprintf("  full     mean=%dµs p50=%dµs p99=%dµs\n", c.FullMeanUS, c.FullP50US, c.FullP99US)
	out += fmt.Sprintf("  cascade  mean=%dµs p50=%dµs p99=%dµs (%d of %d candidates pruned)\n",
		c.CascadeMeanUS, c.CascadeP50US, c.CascadeP99US, c.Pruned, c.Candidates)
	out += fmt.Sprintf("  speedup  mean=%.1fx p50=%.1fx p99=%.1fx — top-k verified equal on all %d reps\n",
		c.MeanSpeedup, c.P50Speedup, c.P99Speedup, c.VerifiedReps)
	return out
}

// formatCascade renders the section as prose, next to the paper tables.
func formatCascade(c *jsonCascade) string {
	out := fmt.Sprintf("Cascade — bound-then-refine planner vs full fidelity (%s, %s, k=%d)\n",
		c.Method, c.Mode, c.K)
	out += fmt.Sprintf("  corpus %d candidates (%d relevant, %d junk), %d reps, cpus=%d gomaxprocs=%d\n",
		c.Candidates, c.Relevant, c.Junk, c.Reps, c.CPUs, c.GOMAXPROCS)
	out += formatCascadeArm(&c.jsonCascadeArm)
	if len(c.Matchers) > 0 {
		names := make([]string, 0, len(c.Matchers))
		for name := range c.Matchers {
			names = append(names, name)
		}
		sort.Strings(names)
		out += "  tail matcher prune rates:\n"
		for _, name := range names {
			ms := c.Matchers[name]
			out += fmt.Sprintf("    %-22s bounded=%d pruned=%d refined=%d (%.0f%% pruned)\n",
				name, ms.Bounded, ms.Pruned, ms.Refined, 100*ms.PruneRate)
		}
	}
	if c.Tail != nil {
		out += fmt.Sprintf("  ensemble with tail (%s, %d reps):\n", c.Tail.Method, c.Tail.Reps)
		out += formatCascadeArm(c.Tail)
	}
	return out
}

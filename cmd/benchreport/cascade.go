package main

// Cascade measurement (-cascade / -json "cascade" section): the query
// planner's bound-then-refine discovery re-rank against the full-fidelity
// reference on a skewed corpus — a handful of genuinely related tables in a
// sea of junk with disjoint values and names, which is the regime served
// search actually sees. Every rep verifies the two arms return the same
// top-k (the planner's exactness contract) before its timing counts, so a
// speedup can never be bought with a wrong answer. Each arm starts from a
// cold profile store, mirroring the discover CLI: full fidelity warms every
// candidate, the cascade pays profiling lazily and only for candidates
// whose bound survives the cutoff.

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"time"

	"valentine/internal/experiment"
	"valentine/internal/planner"
	"valentine/internal/profile"
	"valentine/internal/table"
)

type jsonCascade struct {
	// CPUs and GOMAXPROCS qualify the latencies: the container this report
	// ships from is typically single-core, so the arms are serial anyway.
	CPUs       int    `json:"cpus"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Method     string `json:"method"`
	Mode       string `json:"mode"`
	K          int    `json:"k"`
	// Candidates = Relevant + Junk tables per query.
	Candidates int `json:"candidates"`
	Relevant   int `json:"relevant"`
	Junk       int `json:"junk"`
	Reps       int `json:"reps"`
	// Per-query wall latency, microseconds.
	FullMeanUS    int64 `json:"full_mean_us"`
	FullP50US     int64 `json:"full_p50_us"`
	FullP99US     int64 `json:"full_p99_us"`
	CascadeMeanUS int64 `json:"cascade_mean_us"`
	CascadeP50US  int64 `json:"cascade_p50_us"`
	CascadeP99US  int64 `json:"cascade_p99_us"`
	// Speedups of the cascade arm over the full-fidelity arm.
	MeanSpeedup float64 `json:"mean_speedup"`
	P50Speedup  float64 `json:"p50_speedup"`
	P99Speedup  float64 `json:"p99_speedup"`
	// Pruned is the candidates cut by the bound-vs-cutoff check per query
	// (identical across reps: the corpus and cutoff are deterministic).
	Pruned int `json:"pruned"`
	// VerifiedReps counts reps whose cascade top-k was checked equal to the
	// full-fidelity top-k; measureCascade fails unless it equals Reps.
	VerifiedReps int `json:"verified_reps"`
}

// cascadeCorpus builds the skewed discovery corpus: relevant tables share
// the query's value vocabulary and column names with graded overlap, junk
// tables carry per-table value pools and column names. Deterministic, so
// every rep (and every run of benchreport) ranks the same corpus.
func cascadeCorpus(relevant, junk, cols, rows int) (*table.Table, []*table.Table) {
	rng := rand.New(rand.NewSource(7))
	draw := func(lo, span, n int) []string {
		vals := make([]string, n)
		for i := range vals {
			vals[i] = fmt.Sprintf("cust-%04d", lo+rng.Intn(span))
		}
		return vals
	}
	// Shared column names carry no digit tokens: junk column names embed
	// digits, and a stray shared token (even "0") would lift the name-token
	// bound of every junk table to 1.
	greek := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta",
		"eta", "theta", "iota", "kappa", "lambda", "mu"}
	fill := func(t *table.Table, prefix string, lo int) {
		for c := 0; c < cols; c++ {
			t.AddColumn(fmt.Sprintf("%s %s", prefix, greek[c%len(greek)]), draw(lo, 400, rows))
		}
	}
	query := table.New("query")
	fill(query, "shared", 0)

	corpus := make([]*table.Table, 0, relevant+junk)
	for i := 0; i < relevant; i++ {
		// Later relevant tables drift away from the query's value range, so
		// the top-k has a real ranking to get right, not a tie plateau.
		t := table.New(fmt.Sprintf("relevant%02d", i))
		fill(t, "shared", i*35)
		corpus = append(corpus, t)
	}
	for j := 0; j < junk; j++ {
		t := table.New(fmt.Sprintf("junk%03d", j))
		for c := 0; c < cols; c++ {
			vals := make([]string, rows)
			for r := range vals {
				vals[r] = fmt.Sprintf("junk%03d-%d-%d", j, c, rng.Intn(400))
			}
			t.AddColumn(fmt.Sprintf("junk%03d field%d", j, c), vals)
		}
		corpus = append(corpus, t)
	}
	return query, corpus
}

// measureCascade times both arms, alternating full/cascade each rep, and
// hard-fails on any top-k divergence — a wrong answer is a regression, not
// a section to skip.
func measureCascade(ctx context.Context) (*jsonCascade, error) {
	// Wide-but-short tables tilt the ratio toward matching: the matcher's
	// per-candidate work is quadratic in columns (every column pair pays
	// element construction, name distances and instance features) while the
	// profiling the cascade's bounds force is linear, so the corpus shape
	// controls how much a pruned candidate actually saves.
	const (
		relevant = 12
		junk     = 150
		cols     = 8
		rows     = 30
		k        = 10
		mode     = "union"
		reps     = 20
	)
	query, corpus := cascadeCorpus(relevant, junk, cols, rows)
	m, err := experiment.NewRegistry().New(experiment.MethodComaInstance, nil)
	if err != nil {
		return nil, err
	}

	runArm := func(cascade bool) (time.Duration, *planner.RerankResult, error) {
		store := profile.NewStore()
		start := time.Now()
		cands := make([]planner.Candidate, len(corpus))
		for i, t := range corpus {
			cands[i] = planner.Candidate{Name: t.Name, Profile: store.Of(t)}
		}
		var rr *planner.RerankResult
		var rerr error
		if cascade {
			rr, rerr = planner.Rerank(ctx, m, store.Of(query), cands, mode, k)
		} else {
			store.Warm(corpus...)
			rr, rerr = planner.RerankFull(ctx, m, store.Of(query), cands, mode, k)
		}
		return time.Since(start), rr, rerr
	}

	out := &jsonCascade{
		CPUs: runtime.NumCPU(), GOMAXPROCS: runtime.GOMAXPROCS(0),
		Method: experiment.MethodComaInstance, Mode: mode, K: k,
		Candidates: relevant + junk, Relevant: relevant, Junk: junk, Reps: reps,
	}
	fullDs := make([]time.Duration, 0, reps)
	cascDs := make([]time.Duration, 0, reps)
	for rep := 0; rep < reps; rep++ {
		fullD, full, err := runArm(false)
		if err != nil {
			return nil, fmt.Errorf("cascade section: full-fidelity arm: %w", err)
		}
		cascD, casc, err := runArm(true)
		if err != nil {
			return nil, fmt.Errorf("cascade section: cascade arm: %w", err)
		}
		if len(full.Ranked) != len(casc.Ranked) {
			return nil, fmt.Errorf("cascade section: rep %d: top-k sizes diverge (%d vs %d)",
				rep, len(full.Ranked), len(casc.Ranked))
		}
		for i := range full.Ranked {
			if full.Ranked[i] != casc.Ranked[i] {
				return nil, fmt.Errorf("cascade section: rep %d: rank %d diverges: full %+v cascade %+v",
					rep, i, full.Ranked[i], casc.Ranked[i])
			}
		}
		out.VerifiedReps++
		out.Pruned = casc.Pruned
		fullDs = append(fullDs, fullD)
		cascDs = append(cascDs, cascD)
	}
	if out.Pruned == 0 {
		return nil, fmt.Errorf("cascade section: bounds pruned nothing on a %d-junk corpus", junk)
	}

	out.FullMeanUS, out.FullP50US, out.FullP99US = latencySummary(fullDs)
	out.CascadeMeanUS, out.CascadeP50US, out.CascadeP99US = latencySummary(cascDs)
	if out.CascadeMeanUS > 0 {
		out.MeanSpeedup = float64(out.FullMeanUS) / float64(out.CascadeMeanUS)
	}
	if out.CascadeP50US > 0 {
		out.P50Speedup = float64(out.FullP50US) / float64(out.CascadeP50US)
	}
	if out.CascadeP99US > 0 {
		out.P99Speedup = float64(out.FullP99US) / float64(out.CascadeP99US)
	}
	return out, nil
}

// latencySummary reduces one arm's rep latencies to mean/p50/p99 in µs.
func latencySummary(ds []time.Duration) (mean, p50, p99 int64) {
	sorted := make([]time.Duration, len(ds))
	copy(sorted, ds)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum time.Duration
	for _, d := range sorted {
		sum += d
	}
	pct := func(p float64) int64 {
		idx := int(math.Ceil(p*float64(len(sorted)))) - 1
		if idx < 0 {
			idx = 0
		}
		return sorted[idx].Microseconds()
	}
	return (sum / time.Duration(len(sorted))).Microseconds(), pct(0.50), pct(0.99)
}

// formatCascade renders the section as prose, next to the paper tables.
func formatCascade(c *jsonCascade) string {
	out := fmt.Sprintf("Cascade — bound-then-refine planner vs full fidelity (%s, %s, k=%d)\n",
		c.Method, c.Mode, c.K)
	out += fmt.Sprintf("  corpus %d candidates (%d relevant, %d junk), %d reps, cpus=%d gomaxprocs=%d\n",
		c.Candidates, c.Relevant, c.Junk, c.Reps, c.CPUs, c.GOMAXPROCS)
	out += fmt.Sprintf("  full     mean=%dµs p50=%dµs p99=%dµs\n", c.FullMeanUS, c.FullP50US, c.FullP99US)
	out += fmt.Sprintf("  cascade  mean=%dµs p50=%dµs p99=%dµs (%d of %d candidates pruned)\n",
		c.CascadeMeanUS, c.CascadeP50US, c.CascadeP99US, c.Pruned, c.Candidates)
	out += fmt.Sprintf("  speedup  mean=%.1fx p50=%.1fx p99=%.1fx — top-k verified equal on all %d reps\n",
		c.MeanSpeedup, c.P50Speedup, c.P99Speedup, c.VerifiedReps)
	return out
}

package main

// Engine speedup measurement (-json "engine" section): the same two
// workloads as the root BenchmarkEngine* benches — a heavyweight ensemble
// match and an experiment grid — executed once pinned to one engine worker
// and once at GOMAXPROCS, with identical outputs. The wall-clock ratios land
// in BENCH_<n>.json so the trajectory records what the unified concurrent
// execution engine buys on the hardware that produced the file (on a
// single-core runner the honest answer is ~1×).

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"time"

	"valentine"
	"valentine/internal/datagen"
	"valentine/internal/experiment"
	"valentine/internal/fabrication"
)

type jsonEngine struct {
	// CPUs and Parallelism qualify the speedups: on a single-core runner
	// the parallel arm cannot beat the sequential one.
	CPUs                   int     `json:"cpus"`
	Parallelism            int     `json:"parallelism"`
	EnsembleSequentialUS   int64   `json:"ensemble_sequential_us"`
	EnsembleParallelUS     int64   `json:"ensemble_parallel_us"`
	EnsembleSpeedup        float64 `json:"ensemble_speedup"`
	ExperimentSequentialUS int64   `json:"experiment_sequential_us"`
	ExperimentParallelUS   int64   `json:"experiment_parallel_us"`
	ExperimentSpeedup      float64 `json:"experiment_speedup"`
}

// measureEngine times both workloads in both execution modes, best of
// `reps` per arm.
func measureEngine() (*jsonEngine, error) {
	const reps = 3
	out := &jsonEngine{
		CPUs:        runtime.NumCPU(),
		Parallelism: runtime.GOMAXPROCS(0),
	}

	// Workload 1: the heavyweight ensemble on a high-cardinality joinable
	// pair, profiles pre-warmed so both arms measure scoring alone.
	src := datagen.OpenData(datagen.Options{Rows: 1500, Seed: 6})
	pair, err := fabrication.New(8).Joinable(src, 0.5, 1.0, false)
	if err != nil {
		return nil, err
	}
	ens, err := valentine.NewEnsemble([]string{
		valentine.MethodComaInstance, valentine.MethodDistribution,
		valentine.MethodJaccardLev, valentine.MethodLSH,
	}, nil)
	if err != nil {
		return nil, err
	}
	store := valentine.NewProfileStore()
	store.Warm(pair.Source, pair.Target)
	sp, tp := store.Of(pair.Source), store.Of(pair.Target)
	matchOnce := func(parallelism int) (time.Duration, error) {
		ctx := valentine.WithEngineOptions(context.Background(),
			valentine.EngineOptions{Parallelism: parallelism})
		start := time.Now()
		_, err := valentine.MatchProfilesWithContext(ctx, ens, sp, tp)
		return time.Since(start), err
	}

	// Workload 2: the experiment grid over one fabricated source at quick
	// parameters, dispatched on 1 engine worker vs GOMAXPROCS.
	gridSrc := datagen.TPCDI(datagen.Options{Rows: 40, Seed: 2})
	pairs, err := fabrication.GridSeeds(fabrication.SourceTable{Name: "TPC-DI", Table: gridSrc}, 1, 1)
	if err != nil {
		return nil, err
	}
	gridOnce := func(workers int) (time.Duration, error) {
		spec := experiment.Spec{
			Registry: experiment.NewRegistry(),
			Grids:    experiment.QuickGrids(),
			Methods: []string{
				valentine.MethodComaSchema, valentine.MethodComaInstance,
				valentine.MethodDistribution, valentine.MethodJaccardLev,
			},
			Pairs:   pairs,
			Workers: workers,
		}
		start := time.Now()
		_, err := experiment.Run(context.Background(), spec)
		return time.Since(start), err
	}

	// Each rep runs sequential and parallel arms back to back, so drifting
	// machine load (thermal throttling, background jobs) hits both alike;
	// the best rep per arm is reported.
	var ensSeq, ensPar, expSeq, expPar time.Duration
	keepMin := func(min *time.Duration, rep int, run func() (time.Duration, error)) error {
		d, err := run()
		if err != nil {
			return err
		}
		if rep == 0 || d < *min {
			*min = d
		}
		return nil
	}
	for r := 0; r < reps; r++ {
		if err := keepMin(&ensSeq, r, func() (time.Duration, error) { return matchOnce(1) }); err != nil {
			return nil, err
		}
		if err := keepMin(&ensPar, r, func() (time.Duration, error) { return matchOnce(0) }); err != nil {
			return nil, err
		}
		if err := keepMin(&expSeq, r, func() (time.Duration, error) { return gridOnce(1) }); err != nil {
			return nil, err
		}
		if err := keepMin(&expPar, r, func() (time.Duration, error) { return gridOnce(0) }); err != nil {
			return nil, err
		}
	}

	out.EnsembleSequentialUS = ensSeq.Microseconds()
	out.EnsembleParallelUS = ensPar.Microseconds()
	out.ExperimentSequentialUS = expSeq.Microseconds()
	out.ExperimentParallelUS = expPar.Microseconds()
	if ensPar > 0 {
		out.EnsembleSpeedup = float64(ensSeq) / float64(ensPar)
	}
	if expPar > 0 {
		out.ExperimentSpeedup = float64(expSeq) / float64(expPar)
	}
	fmt.Fprintf(os.Stderr,
		"engine speedup at %d workers (%d cpus): ensemble %.2fx, experiment grid %.2fx\n",
		out.Parallelism, out.CPUs, out.EnsembleSpeedup, out.ExperimentSpeedup)
	return out, nil
}

package main

// Scoring-kernel measurement (-json "kernels" section): one pairwise
// Jaccard overlap over two 5000-distinct-value columns (half shared),
// through the map-based kernel the suite used before interning and through
// the interned sorted-merge and bitmap kernels; plus one 128-slot MinHash
// signature from raw strings vs from dictionary-memoized base hashes. The
// ratios land in BENCH_<n>.json so the trajectory records what the
// interning layer buys on the hardware that produced the file. These are
// single-threaded kernels, so — unlike the engine/serve sections — the
// numbers are meaningful even on a one-core runner.

import (
	"fmt"
	"runtime"
	"time"

	"valentine/internal/intern"
	"valentine/internal/profile"
	"valentine/internal/table"
)

type jsonKernels struct {
	CPUs       int `json:"cpus"`
	GOMAXPROCS int `json:"gomaxprocs"`
	// SetSize is the distinct-value count per column (half shared).
	SetSize int `json:"set_size"`
	// One pairwise overlap, nanoseconds per op.
	OverlapMapNS    int64 `json:"overlap_map_ns"`
	OverlapMergeNS  int64 `json:"overlap_merge_ns"`
	OverlapBitmapNS int64 `json:"overlap_bitmap_ns"`
	// Speedups of the interned kernels over the map kernel.
	MergeSpeedup  float64 `json:"merge_speedup"`
	BitmapSpeedup float64 `json:"bitmap_speedup"`
	// One 128-slot MinHash signature, nanoseconds per op.
	MinHashRawNS     int64   `json:"minhash_raw_ns"`
	MinHashSharedNS  int64   `json:"minhash_shared_ns"`
	MinHashSpeedup   float64 `json:"minhash_speedup"`
	MinHashSignature int     `json:"minhash_signature"`
}

// measureKernels times the kernel arms, best of reps, enough iterations per
// rep to dominate timer noise.
func measureKernels() (*jsonKernels, error) {
	const (
		n    = 5000
		reps = 5
	)
	out := &jsonKernels{CPUs: runtime.NumCPU(), GOMAXPROCS: runtime.GOMAXPROCS(0),
		SetSize: n, MinHashSignature: profile.DefaultSignature}

	aMap := make(map[string]struct{}, n)
	bMap := make(map[string]struct{}, n)
	sparseA := make([]uint32, 0, n)
	sparseB := make([]uint32, 0, n)
	denseA := make([]uint32, 0, n)
	denseB := make([]uint32, 0, n)
	for i := 0; i < n; i++ {
		aMap[fmt.Sprintf("value-%07d", i)] = struct{}{}
		bMap[fmt.Sprintf("value-%07d", i+n/2)] = struct{}{}
		sparseA = append(sparseA, uint32(i)*211)
		sparseB = append(sparseB, uint32(i+n/2)*211)
		denseA = append(denseA, uint32(i))
		denseB = append(denseB, uint32(i+n/2))
	}
	sa, sb := intern.NewSet(sparseA), intern.NewSet(sparseB)
	da, db := intern.NewSet(denseA), intern.NewSet(denseB)
	if sa.HasBitmap() || !da.HasBitmap() {
		return nil, fmt.Errorf("kernel fixtures mis-shaped (sparse bitmap %v, dense bitmap %v)",
			sa.HasBitmap(), da.HasBitmap())
	}
	d := intern.NewDict()
	hashes := make([]uint64, 0, n)
	for v := range aMap {
		_, h := d.InternHash(v)
		hashes = append(hashes, h)
	}

	var sinkF float64
	var sinkS []uint64
	best := func(iters int, f func()) int64 {
		bestNS := int64(0)
		for r := 0; r < reps; r++ {
			start := time.Now()
			for i := 0; i < iters; i++ {
				f()
			}
			ns := time.Since(start).Nanoseconds() / int64(iters)
			if bestNS == 0 || ns < bestNS {
				bestNS = ns
			}
		}
		return bestNS
	}
	out.OverlapMapNS = best(50, func() { sinkF = table.JaccardOfSets(aMap, bMap) })
	out.OverlapMergeNS = best(500, func() { sinkF = intern.Jaccard(sa, sb) })
	out.OverlapBitmapNS = best(5000, func() { sinkF = intern.Jaccard(da, db) })
	out.MinHashRawNS = best(10, func() { sinkS = profile.SignatureOf(aMap, profile.DefaultSignature) })
	out.MinHashSharedNS = best(10, func() { sinkS = profile.SignatureFromHashes(hashes, profile.DefaultSignature) })
	_, _ = sinkF, sinkS

	if out.OverlapMergeNS > 0 {
		out.MergeSpeedup = float64(out.OverlapMapNS) / float64(out.OverlapMergeNS)
	}
	if out.OverlapBitmapNS > 0 {
		out.BitmapSpeedup = float64(out.OverlapMapNS) / float64(out.OverlapBitmapNS)
	}
	if out.MinHashSharedNS > 0 {
		out.MinHashSpeedup = float64(out.MinHashRawNS) / float64(out.MinHashSharedNS)
	}
	return out, nil
}

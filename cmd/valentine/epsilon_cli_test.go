package main

// CLI tests of the -epsilon flag: validation at the flag boundary, the
// approximate-output note, and the epsilon-zero exactness contract.

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestCmdFlagsRejectBadEpsilonAndBudget(t *testing.T) {
	dir, query := writeCorpusDir(t)
	target := filepath.Join(dir, "related_a.csv")
	for _, eps := range []string{"-0.1", "1", "1.5", "NaN"} {
		if err := cmdDiscover([]string{"-query", query, "-dir", dir, "-epsilon", eps}); err == nil {
			t.Errorf("discover -epsilon %s: expected validation error", eps)
		}
		if err := cmdMatch([]string{"-source", query, "-target", target, "-epsilon", eps}); err == nil {
			t.Errorf("match -epsilon %s: expected validation error", eps)
		}
		if err := cmdSearch([]string{"-index", "absent.idx", "-query", query, "-epsilon", eps}); err == nil {
			t.Errorf("search -epsilon %s: expected validation error", eps)
		}
	}
	if err := cmdDiscover([]string{"-query", query, "-dir", dir, "-budget", "-5ms"}); err == nil {
		t.Error("discover -budget -5ms: expected validation error")
	}
	if err := cmdMatch([]string{"-source", query, "-target", target, "-budget", "-5ms"}); err == nil {
		t.Error("match -budget -5ms: expected validation error")
	}
}

// TestCmdDiscoverEpsilonNote: a nonzero epsilon marks the output
// approximate; epsilon zero stays byte-identical to the exact cascade.
func TestCmdDiscoverEpsilonNote(t *testing.T) {
	dir, query := writeCorpusDir(t)
	base := []string{"-query", query, "-dir", dir, "-mode", "union", "-method", "coma-instance", "-top", "3"}
	approx := captureStdout(t, func() error { return cmdDiscover(append(base, "-epsilon", "0.2")) })
	if !strings.Contains(approx, "approximate: scores within 0.2") {
		t.Fatalf("missing approximate note:\n%s", approx)
	}
	exactDefault := captureStdout(t, func() error { return cmdDiscover(base) })
	exactZero := captureStdout(t, func() error { return cmdDiscover(append(base, "-epsilon", "0")) })
	if exactDefault != exactZero {
		t.Fatalf("-epsilon 0 output diverges from the default\n--- default ---\n%s--- epsilon 0 ---\n%s", exactDefault, exactZero)
	}
}

// TestCmdMatchEpsilonAndVerbose: the match command accepts -epsilon on the
// cascade path (approximate note) and -v appends per-matcher engine stats.
func TestCmdMatchEpsilonAndVerbose(t *testing.T) {
	dir, query := writeCorpusDir(t)
	target := filepath.Join(dir, "related_a.csv")
	base := []string{"-method", "jaccard-levenshtein", "-source", query, "-target", target, "-top", "3"}
	out := captureStdout(t, func() error { return cmdMatch(append(base, "-epsilon", "0.3", "-v")) })
	if !strings.Contains(out, "approximate: scores within 0.3") {
		t.Fatalf("missing approximate note:\n%s", out)
	}
	if !strings.Contains(out, "engine:") || !strings.Contains(out, "jaccard-levenshtein bounded=") {
		t.Fatalf("missing per-matcher engine stats:\n%s", out)
	}
	// Epsilon is consumed by the cascade only: with -cascade=off the run is
	// exact and must not claim approximation.
	off := captureStdout(t, func() error { return cmdMatch(append(base, "-epsilon", "0.3", "-cascade", "off")) })
	if strings.Contains(off, "approximate:") {
		t.Fatalf("-cascade=off claimed approximation:\n%s", off)
	}
}

package main

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"valentine"
)

// captureStdout runs f with os.Stdout redirected and returns what it wrote.
func captureStdout(t *testing.T, f func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	ferr := f()
	w.Close()
	os.Stdout = old
	out, _ := io.ReadAll(r)
	if ferr != nil {
		t.Fatalf("command failed: %v\noutput:\n%s", ferr, out)
	}
	return string(out)
}

// writeLake fabricates a small CSV data lake: two fragments joinable with
// the query plus one unrelated table.
func writeLake(t *testing.T) (dir, queryPath string) {
	t.Helper()
	dir = t.TempDir()
	src := valentine.TPCDI(valentine.DatasetOptions{Rows: 80, Seed: 5})
	pair, err := valentine.NewFabricator(7).Joinable(src, 0.6, 0.9, false)
	if err != nil {
		t.Fatal(err)
	}
	queryPath = filepath.Join(dir, "query.csv")
	if err := pair.Source.WriteCSVFile(queryPath); err != nil {
		t.Fatal(err)
	}
	if err := pair.Target.WriteCSVFile(filepath.Join(dir, "crm_extract.csv")); err != nil {
		t.Fatal(err)
	}
	other := valentine.ChEMBL(valentine.DatasetOptions{Rows: 80, Seed: 5})
	if err := other.WriteCSVFile(filepath.Join(dir, "assay.csv")); err != nil {
		t.Fatal(err)
	}
	return dir, queryPath
}

func TestIndexSearchDiscoverEndToEnd(t *testing.T) {
	dir, queryPath := writeLake(t)
	idxPath := filepath.Join(t.TempDir(), "lake.idx")

	out := captureStdout(t, func() error {
		return cmdIndex([]string{"-dir", dir, "-out", idxPath})
	})
	if !strings.Contains(out, "indexed 3 tables") {
		t.Errorf("index output: %s", out)
	}

	out = captureStdout(t, func() error {
		return cmdSearch([]string{"-index", idxPath, "-query", queryPath, "-mode", "join", "-top", "5"})
	})
	if !strings.Contains(out, "crm_extract") {
		t.Errorf("search should surface the joinable fragment:\n%s", out)
	}
	// The joinable fragment must outrank the unrelated table.
	if crm, assay := strings.Index(out, "crm_extract"), strings.Index(out, "assay"); assay >= 0 && assay < crm {
		t.Errorf("ranking wrong:\n%s", out)
	}

	out = captureStdout(t, func() error {
		return cmdDiscover([]string{"-query", queryPath, "-dir", dir, "-mode", "join",
			"-method", valentine.MethodLSH, "-top", "5"})
	})
	if !strings.Contains(out, "crm_extract.csv") {
		t.Errorf("discover should surface the joinable fragment:\n%s", out)
	}
	if strings.Contains(out, "query.csv") {
		t.Errorf("discover must skip the query file:\n%s", out)
	}
}

// TestDiscoverUnionScoresValueDisjointTables: a schema-identical table with
// disjoint values (last year's export) never collides in the value-overlap
// index, so union mode must score the whole corpus rather than prune.
func TestDiscoverUnionScoresValueDisjointTables(t *testing.T) {
	dir := t.TempDir()
	queryPath := filepath.Join(dir, "customers_2024.csv")
	if err := os.WriteFile(queryPath,
		[]byte("customer_id,city\nc1,amsterdam\nc2,delft\nc3,leiden\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "archive_2023.csv"),
		[]byte("customer_id,city\nx9,utrecht\nx8,breda\nx7,zwolle\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out := captureStdout(t, func() error {
		return cmdDiscover([]string{"-query", queryPath, "-dir", dir, "-mode", "union",
			"-method", valentine.MethodComaSchema, "-top", "5"})
	})
	var archiveLine string
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "archive_2023.csv") {
			archiveLine = line
		}
	}
	if archiveLine == "" || strings.Contains(archiveLine, " 0.000") {
		t.Errorf("schema-identical table should score despite disjoint values:\n%s", out)
	}
}

// TestIndexFormatAndMigrate: -format selects the persistence encoding and
// -migrate re-encodes an existing index without touching CSVs; every
// representation must answer the same search identically.
func TestIndexFormatAndMigrate(t *testing.T) {
	dir, queryPath := writeLake(t)
	// Pad the lake past the default seal threshold (16 tables) so the
	// snapshot formats actually write sealed segment files.
	for i := 0; i < 16; i++ {
		csv := fmt.Sprintf("fill_%02d_k,fill_%02d_v\nf%d-1,f%d-a\nf%d-2,f%d-b\n", i, i, i, i, i, i)
		if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("fill_%02d.csv", i)), []byte(csv), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	base := t.TempDir()
	flat := filepath.Join(base, "lake.idx")
	v2dir := filepath.Join(base, "snap-v2")
	v1dir := filepath.Join(base, "snap-v1")

	out := captureStdout(t, func() error {
		return cmdIndex([]string{"-dir", dir, "-out", flat})
	})
	if !strings.Contains(out, "indexed 19 tables") {
		t.Errorf("index output: %s", out)
	}
	// Flat → v2 snapshot directory, then v2 → v1.
	out = captureStdout(t, func() error {
		return cmdIndex([]string{"-migrate", flat, "-out", v2dir, "-format", "v2"})
	})
	if !strings.Contains(out, "migrated 19 tables") {
		t.Errorf("migrate output: %s", out)
	}
	if m, _ := filepath.Glob(filepath.Join(v2dir, "seg-*.seg")); len(m) == 0 {
		t.Error("v2 migration wrote no columnar segment files")
	}
	out = captureStdout(t, func() error {
		return cmdIndex([]string{"-migrate", v2dir, "-out", v1dir, "-format", "v1"})
	})
	if !strings.Contains(out, "migrated 19 tables") {
		t.Errorf("migrate output: %s", out)
	}
	if m, _ := filepath.Glob(filepath.Join(v1dir, "seg-*.gob")); len(m) == 0 {
		t.Error("v1 migration wrote no gob segment files")
	}

	var want string
	for _, idx := range []string{flat, v2dir, v1dir} {
		got := captureStdout(t, func() error {
			return cmdSearch([]string{"-index", idx, "-query", queryPath, "-mode", "join", "-top", "5"})
		})
		if want == "" {
			want = got
		} else if got != want {
			t.Errorf("search against %s diverged:\n got %s\nwant %s", idx, got, want)
		}
		if !strings.Contains(got, "crm_extract") {
			t.Errorf("search against %s lost the joinable fragment:\n%s", idx, got)
		}
	}

	// Default format follows what -out already is: -append into the v2
	// snapshot directory must keep it a snapshot directory.
	extra := filepath.Join(dir, "extra.csv")
	if err := os.WriteFile(extra, []byte("zz_id,zz_v\n1,a\n2,b\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out = captureStdout(t, func() error {
		return cmdIndex([]string{"-dir", dir, "-out", v2dir, "-append"})
	})
	if !strings.Contains(out, "appended 20 tables") {
		t.Errorf("append output: %s", out)
	}
	if _, err := os.Stat(filepath.Join(v2dir, "MANIFEST.gob")); err != nil {
		t.Errorf("append flattened the snapshot directory: %v", err)
	}

	// Conflicting and invalid flag combinations fail loudly.
	if err := cmdIndex([]string{"-migrate", flat, "-out", v1dir, "-append"}); err == nil {
		t.Error("-migrate with -append should fail")
	}
	if err := cmdIndex([]string{"-migrate", flat, "-out", v1dir, "-dir", dir}); err == nil {
		t.Error("-migrate with -dir should fail")
	}
	if err := cmdIndex([]string{"-dir", dir, "-out", flat, "-format", "v3"}); err == nil {
		t.Error("unknown -format should fail")
	}
}

func TestSearchErrors(t *testing.T) {
	if err := cmdSearch([]string{"-index", "does-not-exist.idx", "-query", "also-missing.csv"}); err == nil {
		t.Error("missing query flag file should fail")
	}
	if err := cmdSearch([]string{}); err == nil {
		t.Error("missing -query should fail")
	}
	if err := cmdIndex([]string{"-dir", t.TempDir()}); err == nil {
		t.Error("empty corpus dir should fail")
	}
	dir, queryPath := writeLake(t)
	if err := cmdSearch([]string{"-index", filepath.Join(dir, "none.idx"), "-query", queryPath}); err == nil {
		t.Error("missing index file should fail")
	}
	if err := cmdDiscover([]string{"-query", queryPath, "-dir", dir, "-mode", "sideways"}); err == nil {
		t.Error("bad mode should fail")
	}
}

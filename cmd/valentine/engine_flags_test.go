package main

import (
	"path/filepath"
	"strings"
	"testing"

	"valentine"
)

// TestDiscoverEngineFlags: -parallelism must not change the ranking, and -v
// must print the engine's pipeline stats line.
func TestDiscoverEngineFlags(t *testing.T) {
	dir, queryPath := writeLake(t)
	base := captureStdout(t, func() error {
		return cmdDiscover([]string{"-query", queryPath, "-dir", dir, "-mode", "join",
			"-method", valentine.MethodLSH, "-top", "5"})
	})
	for _, par := range []string{"1", "4"} {
		out := captureStdout(t, func() error {
			return cmdDiscover([]string{"-query", queryPath, "-dir", dir, "-mode", "join",
				"-method", valentine.MethodLSH, "-top", "5", "-parallelism", par, "-timeout", "1m"})
		})
		if out != base {
			t.Errorf("-parallelism %s changed discover output:\n--- default ---\n%s--- parallel ---\n%s", par, base, out)
		}
	}
	out := captureStdout(t, func() error {
		return cmdDiscover([]string{"-query", queryPath, "-dir", dir, "-mode", "join",
			"-method", valentine.MethodLSH, "-top", "5", "-v"})
	})
	if !strings.Contains(out, "engine: candidates=") {
		t.Errorf("-v should print engine stats:\n%s", out)
	}
	if !strings.HasPrefix(out, base[:len(base)-1]) {
		t.Errorf("-v should only append the stats line:\n%s", out)
	}
}

// TestSearchEngineFlags: the served search accepts -parallelism/-timeout and
// the ranking stays put.
func TestSearchEngineFlags(t *testing.T) {
	dir, queryPath := writeLake(t)
	idxPath := filepath.Join(t.TempDir(), "lake.idx")
	captureStdout(t, func() error {
		return cmdIndex([]string{"-dir", dir, "-out", idxPath})
	})
	base := captureStdout(t, func() error {
		return cmdSearch([]string{"-index", idxPath, "-query", queryPath, "-top", "5"})
	})
	out := captureStdout(t, func() error {
		return cmdSearch([]string{"-index", idxPath, "-query", queryPath, "-top", "5",
			"-parallelism", "4", "-timeout", "30s"})
	})
	if out != base {
		t.Errorf("engine flags changed search output:\n--- default ---\n%s--- flagged ---\n%s", base, out)
	}
}

// TestDiscoverTimeoutExpired: an unmeetable -timeout must surface the
// context error instead of a ranking.
func TestDiscoverTimeoutExpired(t *testing.T) {
	dir, queryPath := writeLake(t)
	err := cmdDiscover([]string{"-query", queryPath, "-dir", dir, "-mode", "join",
		"-method", valentine.MethodLSH, "-timeout", "1ns"})
	if err == nil {
		t.Fatal("1ns timeout should abort discovery with an error")
	}
	if !strings.Contains(err.Error(), "deadline") {
		t.Fatalf("err = %v, want a deadline error", err)
	}
}

package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"valentine"
	"valentine/internal/core"
	"valentine/internal/discovery"
	"valentine/internal/engine"
	"valentine/internal/table"
)

// cmdIndex builds a persistent discovery index from a directory of CSVs:
// every column is profiled and MinHash-sketched once, so subsequent
// `valentine search` queries never rescan the corpus. With -append the
// tables are upserted into an existing index file instead of rebuilding the
// whole corpus from scratch. With -migrate an existing index (flat file or
// snapshot directory, either segment format) is re-encoded into -format at
// -out without touching any CSVs.
func cmdIndex(args []string) error {
	fs := flag.NewFlagSet("index", flag.ExitOnError)
	dir := fs.String("dir", ".", "directory of CSVs to index")
	out := fs.String("out", "valentine.idx", "output index file or snapshot directory")
	appendF := fs.Bool("append", false, "upsert into the existing -out index instead of rebuilding")
	format := fs.String("format", "", "output format: flat (single file), v1 (snapshot dir, gob segments), v2 (snapshot dir, columnar mmap segments); default matches -out")
	migrate := fs.String("migrate", "", "existing index (file or snapshot dir) to re-encode into -format at -out")
	signature := fs.Int("signature", 0, "MinHash signature length (default 128)")
	bands := fs.Int("bands", 0, "LSH bands (default 32)")
	tokenBoost := fs.Float64("token-boost", 0, "blend column-name token overlap into scores")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *migrate != "" {
		// The migrated index keeps its corpus and options wholesale; flags
		// that would imply re-profiling or re-configuring must not silently
		// lose their meaning.
		var conflicting []string
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "append", "dir", "signature", "bands", "token-boost":
				conflicting = append(conflicting, "-"+f.Name)
			}
		})
		if len(conflicting) > 0 {
			return fmt.Errorf("index: %s cannot be combined with -migrate (the source index keeps its corpus and options)",
				strings.Join(conflicting, ", "))
		}
		ix, err := valentine.LoadDiscoveryIndexFile(*migrate)
		if err != nil {
			return fmt.Errorf("index -migrate: loading %s: %w", *migrate, err)
		}
		defer ix.Close()
		if err := saveIndexAs(ix, *out, *format); err != nil {
			return err
		}
		size, err := indexBytes(*out)
		if err != nil {
			return err
		}
		fmt.Printf("migrated %d tables (%d columns) from %s → %s (%d bytes)\n",
			ix.NumTables(), ix.NumColumns(), *migrate, *out, size)
		return nil
	}
	var ix *valentine.DiscoveryIndex
	action := "indexed"
	if *appendF {
		// The loaded index's geometry/scoring always wins on append;
		// silently discarding explicit flags would let the user believe a
		// new configuration took effect.
		var conflicting []string
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "signature", "bands", "token-boost":
				conflicting = append(conflicting, "-"+f.Name)
			}
		})
		if len(conflicting) > 0 {
			return fmt.Errorf("index: %s cannot be combined with -append (the existing index keeps its options)",
				strings.Join(conflicting, ", "))
		}
		var err error
		ix, err = valentine.LoadDiscoveryIndexFile(*out)
		if err != nil {
			return fmt.Errorf("index -append: loading %s: %w", *out, err)
		}
		action = "appended"
	} else {
		ix = valentine.NewDiscoveryIndex(valentine.DiscoveryOptions{
			Signature:  *signature,
			Bands:      *bands,
			TokenBoost: *tokenBoost,
		})
	}
	tables, _, err := readCSVDir(*dir, "")
	if err != nil {
		return err
	}
	if len(tables) == 0 {
		return fmt.Errorf("index: no CSVs in %s", *dir)
	}
	for _, t := range tables {
		// Upsert, not Add: -append re-runs over a grown directory replace
		// stale versions of already-indexed tables instead of failing.
		if err := ix.Upsert(t); err != nil {
			fmt.Fprintf(os.Stderr, "index: skipping %s: %v\n", t.Name, err)
		}
	}
	if err := saveIndexAs(ix, *out, *format); err != nil {
		return err
	}
	size, err := indexBytes(*out)
	if err != nil {
		return err
	}
	fmt.Printf("%s %d tables (%d columns) from %s → %s (%d bytes)\n",
		action, ix.NumTables(), ix.NumColumns(), *dir, *out, size)
	return nil
}

// saveIndexAs persists ix at out in the requested format. The default
// follows what out already is — a snapshot directory keeps its (manifest-
// pinned) segment format, anything else gets the flat single file — so
// plain `valentine index` and `-append` runs never change representation
// under the user.
func saveIndexAs(ix *valentine.DiscoveryIndex, out, format string) error {
	switch format {
	case "":
		if info, err := os.Stat(out); err == nil && info.IsDir() {
			return ix.SaveSnapshot(out)
		}
		return ix.SaveFile(out)
	case "flat":
		return ix.SaveFile(out)
	case discovery.SegmentFormatV1, discovery.SegmentFormatV2:
		return ix.SaveSnapshotFormat(out, format)
	default:
		return fmt.Errorf("index: unknown -format %q (want flat, v1 or v2)", format)
	}
}

// indexBytes sizes a persisted index: the file itself, or the sum of a
// snapshot directory's files.
func indexBytes(out string) (int64, error) {
	info, err := os.Stat(out)
	if err != nil {
		return 0, err
	}
	if !info.IsDir() {
		return info.Size(), nil
	}
	entries, err := os.ReadDir(out)
	if err != nil {
		return 0, err
	}
	var total int64
	for _, e := range entries {
		if fi, err := e.Info(); err == nil && !fi.IsDir() {
			total += fi.Size()
		}
	}
	return total, nil
}

// cmdSearch answers a top-k joinability/unionability query against a saved
// index — the served fast path: no corpus I/O, no pairwise matching.
func cmdSearch(args []string) error {
	fs := flag.NewFlagSet("search", flag.ExitOnError)
	indexPath := fs.String("index", "valentine.idx", "index file written by `valentine index`")
	query := fs.String("query", "", "query CSV (required)")
	mode := fs.String("mode", "join", "join|union")
	top := fs.Int("top", 10, "results to print")
	parallelism := fs.Int("parallelism", 0, "engine worker-pool size (default GOMAXPROCS)")
	timeout := fs.Duration("timeout", 0, "wall-clock budget for the search (default none); expiry aborts mid-search")
	budget := fs.Duration("budget", 0, "per-query latency budget (default none); expiry prints the best-effort results so far")
	epsilon := fs.Float64("epsilon", 0, "approximation budget in [0,1): returned scores stay within epsilon of the true top-k (0 = exact)")
	verbose := fs.Bool("v", false, "print engine pipeline stats (candidates, bounded, pruned, scored, per-stage wall time)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *query == "" {
		return fmt.Errorf("search: -query is required")
	}
	if err := core.ValidateBudget(*budget); err != nil {
		return fmt.Errorf("search: -%v", err)
	}
	if err := core.ValidateEpsilon(*epsilon); err != nil {
		return fmt.Errorf("search: -%v", err)
	}
	m, err := discovery.ParseMode(*mode)
	if err != nil {
		return err
	}
	ix, err := valentine.LoadDiscoveryIndexFile(*indexPath)
	if err != nil {
		return err
	}
	q, err := valentine.ReadCSVFile(*query)
	if err != nil {
		return err
	}
	ctx, cancel := engine.Options{Parallelism: *parallelism, Deadline: *timeout}.Start(context.Background())
	defer cancel()
	var stats *engine.Stats
	if *verbose {
		ctx, stats = engine.WithStats(ctx)
	}
	started := time.Now()
	qctx, qcancel := core.BudgetContext(ctx, *budget)
	defer qcancel()
	qctx = core.WithEpsilon(qctx, *epsilon)
	results, _, bestEffort, err := ix.SearchBestEffortContext(qctx, q, m, *top, false)
	if err != nil && !core.IsBudgetExpiry(ctx, err) {
		return err
	}
	fmt.Printf("%s-ability of %q over %d indexed tables:\n", *mode, q.Name, ix.NumTables())
	if bestEffort {
		fmt.Printf("budget %s exhausted: best-effort results\n", *budget)
	}
	if *epsilon > 0 {
		fmt.Printf("approximate: scores within %g of the exact top-%d\n", *epsilon, *top)
	}
	if len(results) == 0 {
		fmt.Println("  no candidate tables collided with the query")
	}
	for i, r := range results {
		fmt.Printf("%2d. %-30s %.3f", i+1, r.Table, r.Score)
		if r.BestQuery != "" {
			fmt.Printf("  via %s ~ %s", r.BestQuery, r.BestIndexed)
		}
		fmt.Println()
	}
	if stats != nil {
		fmt.Printf("engine: %s (elapsed %s, parallelism %d)\n",
			stats.Snapshot(), time.Since(started).Round(time.Millisecond),
			engine.OptionsFrom(ctx).Workers())
	}
	return nil
}

// readCSVDir loads every CSV in dir (non-recursive), skipping the file at
// skipAbs (absolute path, "" to skip nothing). It returns the tables and a
// table-name → file-name map for display.
func readCSVDir(dir, skipAbs string) ([]*table.Table, map[string]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	var tables []*table.Table
	files := make(map[string]string)
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".csv") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		if abs, _ := filepath.Abs(path); abs == skipAbs {
			continue
		}
		t, err := valentine.ReadCSVFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "skipping %s: %v\n", path, err)
			continue
		}
		tables = append(tables, t)
		files[t.Name] = e.Name()
	}
	return tables, files, nil
}

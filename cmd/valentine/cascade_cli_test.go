package main

// End-to-end CLI tests of the planner flags: -cascade on|off parity for
// discover, budget expiry as best-effort (exit 0, flagged output), and
// flag validation.

import (
	"path/filepath"
	"strings"
	"testing"
)

// writeCorpusDir materializes the union corpus as CSVs and returns the
// corpus dir and the query CSV path (outside the dir, so discover does not
// index the query itself).
func writeCorpusDir(t *testing.T) (dir, queryPath string) {
	t.Helper()
	q, corpus := unionCorpus(t)
	dir = t.TempDir()
	for _, tab := range corpus {
		if err := tab.WriteCSVFile(filepath.Join(dir, tab.Name+".csv")); err != nil {
			t.Fatal(err)
		}
	}
	queryPath = filepath.Join(t.TempDir(), "query.csv")
	if err := q.WriteCSVFile(queryPath); err != nil {
		t.Fatal(err)
	}
	return dir, queryPath
}

// TestCmdDiscoverCascadeMatchesOff: the user-visible contract — discover
// output with the cascade on is byte-identical to -cascade=off when no
// budget is in play.
func TestCmdDiscoverCascadeMatchesOff(t *testing.T) {
	dir, query := writeCorpusDir(t)
	base := []string{"-query", query, "-dir", dir, "-mode", "union", "-method", "coma-instance", "-top", "3"}
	on := captureStdout(t, func() error { return cmdDiscover(append(base, "-cascade", "on")) })
	off := captureStdout(t, func() error { return cmdDiscover(append(base, "-cascade", "off")) })
	if on != off {
		t.Fatalf("cascade output diverges from full fidelity\n--- cascade on ---\n%s--- cascade off ---\n%s", on, off)
	}
	if !strings.Contains(on, "related_a") {
		t.Fatalf("expected related_a in the top ranking:\n%s", on)
	}
}

// TestCmdDiscoverBudgetBestEffort: a spent budget is not a CLI failure —
// the command prints the best-effort ranking and the budget note.
func TestCmdDiscoverBudgetBestEffort(t *testing.T) {
	dir, query := writeCorpusDir(t)
	out := captureStdout(t, func() error {
		return cmdDiscover([]string{"-query", query, "-dir", dir, "-mode", "union",
			"-method", "coma-instance", "-budget", "1ns"})
	})
	if !strings.Contains(out, "budget 1ns exhausted") {
		t.Fatalf("missing best-effort note:\n%s", out)
	}
}

func TestCmdDiscoverRejectsBadCascadeFlag(t *testing.T) {
	dir, query := writeCorpusDir(t)
	if err := cmdDiscover([]string{"-query", query, "-dir", dir, "-cascade", "sometimes"}); err == nil {
		t.Fatal("expected -cascade validation error")
	}
}

// TestCmdMatchBudgetBestEffort: same contract on the match command, which
// dispatches through the matcher's own cascade (jaccard-levenshtein).
func TestCmdMatchBudgetBestEffort(t *testing.T) {
	dir, query := writeCorpusDir(t)
	target := filepath.Join(dir, "related_a.csv")
	out := captureStdout(t, func() error {
		return cmdMatch([]string{"-method", "jaccard-levenshtein",
			"-source", query, "-target", target, "-budget", "1ns"})
	})
	if !strings.Contains(out, "budget 1ns exhausted") {
		t.Fatalf("missing best-effort note:\n%s", out)
	}
	// And with no budget, cascade output matches -cascade=off exactly.
	base := []string{"-method", "jaccard-levenshtein", "-source", query, "-target", target, "-top", "5"}
	on := captureStdout(t, func() error { return cmdMatch(append(base, "-cascade", "on")) })
	off := captureStdout(t, func() error { return cmdMatch(append(base, "-cascade", "off")) })
	if on != off {
		t.Fatalf("match cascade output diverges\n--- on ---\n%s--- off ---\n%s", on, off)
	}
}

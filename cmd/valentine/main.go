// Command valentine is the CLI front end of the suite: fabricate matching
// problems from a CSV, run a matcher over two CSVs, evaluate a ranked match
// list against ground truth, and list the available methods.
//
// Usage:
//
//	valentine methods
//	valentine fabricate -src table.csv -scenario unionable -out out/ [flags]
//	valentine match -method coma-schema -source a.csv -target b.csv [-top 10] [-param k=v] [-budget 50ms] [-cascade on|off]
//	valentine evaluate -method coma-schema -source a.csv -target b.csv -truth gt.csv
//	valentine experiment -source TPC-DI -rows 120 [-methods m1,m2]
//	valentine index -dir lake/ -out lake.idx [-append] [-format flat|v1|v2] [-signature 128 -bands 32]
//	valentine index -migrate lake.idx -out snap/ -format v2
//	valentine search -index lake.idx -query q.csv [-mode join|union] [-top 10]
//	valentine discover -query q.csv -dir lake/ [-mode join|union] [-method m] [-top 10]
//	valentine serve -addr :8080 [-index lake.idx] [-dir lake/] [-snapshot snap/]
//	valentine loadgen -scenario examples/scenarios/smoke.json [-addr http://host:8080] [-json report.json]
package main

import (
	"context"
	"encoding/csv"
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"valentine"
	"valentine/internal/core"
	"valentine/internal/engine"
	"valentine/internal/experiment"
	"valentine/internal/fabrication"
	"valentine/internal/report"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "methods":
		err = cmdMethods()
	case "fabricate":
		err = cmdFabricate(os.Args[2:])
	case "match":
		err = cmdMatch(os.Args[2:])
	case "evaluate":
		err = cmdEvaluate(os.Args[2:])
	case "experiment":
		err = cmdExperiment(os.Args[2:])
	case "discover":
		err = cmdDiscover(os.Args[2:])
	case "index":
		err = cmdIndex(os.Args[2:])
	case "search":
		err = cmdSearch(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "loadgen":
		err = cmdLoadgen(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "valentine: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "valentine:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: valentine <command> [flags]

commands:
  methods      list matching methods and their match-type capabilities
  fabricate    split a CSV into a matching problem with ground truth
  match        rank column correspondences between two CSVs
  evaluate     run a matcher and score it against a ground-truth CSV
  experiment   run the quick experiment grid over a generated source
  discover     rank a directory of CSVs by joinability/unionability with a query
  index        build a persistent discovery index from a directory of CSVs
  search       top-k joinability/unionability query against a saved index
  serve        serve the live catalog over HTTP (search, upsert, delete, match)
  loadgen      replay a scenario file's workload against a live or in-process server`)
}

func cmdMethods() error {
	fmt.Print(report.TableI())
	return nil
}

func cmdFabricate(args []string) error {
	fs := flag.NewFlagSet("fabricate", flag.ExitOnError)
	src := fs.String("src", "", "source CSV file (required)")
	scenario := fs.String("scenario", "unionable", "unionable|view-unionable|joinable|semantically-joinable")
	outDir := fs.String("out", "out", "output directory")
	rowOverlap := fs.Float64("row-overlap", 0.5, "row overlap fraction")
	colOverlap := fs.Float64("col-overlap", 0.5, "column overlap fraction (-1 = one shared column)")
	noisySchema := fs.Bool("noisy-schema", false, "perturb target column names")
	noisyInstances := fs.Bool("noisy-instances", false, "perturb target cell values")
	seed := fs.Int64("seed", 1, "fabrication seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *src == "" {
		return fmt.Errorf("fabricate: -src is required")
	}
	tab, err := valentine.ReadCSVFile(*src)
	if err != nil {
		return err
	}
	f := valentine.NewFabricator(*seed)
	v := fabrication.Variant{NoisySchema: *noisySchema, NoisyInstances: *noisyInstances}
	var pair core.TablePair
	switch *scenario {
	case core.ScenarioUnionable:
		pair, err = f.Unionable(tab, *rowOverlap, v)
	case core.ScenarioViewUnionable:
		pair, err = f.ViewUnionable(tab, *colOverlap, v)
	case core.ScenarioJoinable:
		pair, err = f.Joinable(tab, *colOverlap, *rowOverlap, v.NoisySchema)
	case core.ScenarioSemJoinable:
		pair, err = f.SemanticallyJoinable(tab, *colOverlap, *rowOverlap, v.NoisySchema)
	default:
		return fmt.Errorf("fabricate: unknown scenario %q", *scenario)
	}
	if err != nil {
		return err
	}
	if err := pair.Source.WriteCSVFile(*outDir + "/source.csv"); err != nil {
		return err
	}
	if err := pair.Target.WriteCSVFile(*outDir + "/target.csv"); err != nil {
		return err
	}
	gtFile, err := os.Create(*outDir + "/ground_truth.csv")
	if err != nil {
		return err
	}
	defer gtFile.Close()
	w := csv.NewWriter(gtFile)
	if err := w.Write([]string{"source_column", "target_column"}); err != nil {
		return err
	}
	for _, p := range pair.Truth.Pairs() {
		if err := w.Write([]string{p.Source, p.Target}); err != nil {
			return err
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return err
	}
	fmt.Printf("fabricated %s: %d+%d columns, %d ground-truth pairs → %s/\n",
		pair.Name, pair.Source.NumColumns(), pair.Target.NumColumns(), pair.Truth.Size(), *outDir)
	return nil
}

type paramFlags struct{ p core.Params }

func (pf *paramFlags) String() string { return "" }
func (pf *paramFlags) Set(s string) error {
	k, v, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("param %q is not key=value", s)
	}
	if pf.p == nil {
		pf.p = core.Params{}
	}
	if f, err := strconv.ParseFloat(v, 64); err == nil {
		pf.p[k] = f
	} else {
		pf.p[k] = v
	}
	return nil
}

func runMatcher(fs *flag.FlagSet, args []string) (matches []core.Match, method string, sourcePath, targetPath, truthPath string, top int, err error) {
	methodF := fs.String("method", valentine.MethodComaSchema, "matching method")
	sourceF := fs.String("source", "", "source CSV (required)")
	targetF := fs.String("target", "", "target CSV (required)")
	truthF := fs.String("truth", "", "ground truth CSV (source_column,target_column)")
	topF := fs.Int("top", 10, "matches to print")
	var pf paramFlags
	fs.Var(&pf, "param", "matcher parameter key=value (repeatable)")
	if err = fs.Parse(args); err != nil {
		return
	}
	method, sourcePath, targetPath, truthPath, top = *methodF, *sourceF, *targetF, *truthF, *topF
	if sourcePath == "" || targetPath == "" {
		err = fmt.Errorf("-source and -target are required")
		return
	}
	src, err := valentine.ReadCSVFile(sourcePath)
	if err != nil {
		return
	}
	tgt, err := valentine.ReadCSVFile(targetPath)
	if err != nil {
		return
	}
	m, err := valentine.NewMatcher(method, pf.p)
	if err != nil {
		return
	}
	matches, err = m.Match(src, tgt)
	return
}

// cmdMatch ranks column correspondences between two CSVs. Matchers that
// implement the planner's cascade hooks (ensemble, jaccard-levenshtein) run
// their internal bound-then-refine cascade by default — identical output,
// but prunable work is skipped and a -budget expiry yields the best-effort
// ranking so far instead of an error. -cascade=off forces the plain
// full-fidelity path.
func cmdMatch(args []string) error {
	fs := flag.NewFlagSet("match", flag.ExitOnError)
	methodF := fs.String("method", valentine.MethodComaSchema, "matching method")
	sourceF := fs.String("source", "", "source CSV (required)")
	targetF := fs.String("target", "", "target CSV (required)")
	topF := fs.Int("top", 10, "matches to print")
	budget := fs.Duration("budget", 0, "latency budget (default none); expiry prints the best-effort ranking so far")
	cascade := fs.String("cascade", "on", "on|off: matcher-internal bound-then-refine cascade where supported")
	epsilon := fs.Float64("epsilon", 0, "approximation budget in [0,1): cascade prunes more aggressively, every returned score stays within epsilon of the exact ranking (0 = exact)")
	verbose := fs.Bool("v", false, "print engine pipeline stats (candidates, bounded, pruned, scored, per-matcher cascade counters)")
	var pf paramFlags
	fs.Var(&pf, "param", "matcher parameter key=value (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *sourceF == "" || *targetF == "" {
		return fmt.Errorf("-source and -target are required")
	}
	if *cascade != "on" && *cascade != "off" {
		return fmt.Errorf("match: -cascade %q is not on|off", *cascade)
	}
	if err := core.ValidateBudget(*budget); err != nil {
		return fmt.Errorf("match: -%v", err)
	}
	if err := core.ValidateEpsilon(*epsilon); err != nil {
		return fmt.Errorf("match: -%v", err)
	}
	src, err := valentine.ReadCSVFile(*sourceF)
	if err != nil {
		return err
	}
	tgt, err := valentine.ReadCSVFile(*targetF)
	if err != nil {
		return err
	}
	m, err := valentine.NewMatcher(*methodF, pf.p)
	if err != nil {
		return err
	}
	ctx := context.Background()
	var stats *engine.Stats
	if *verbose {
		ctx, stats = engine.WithStats(ctx)
	}
	started := time.Now()
	qctx, qcancel := core.BudgetContext(ctx, *budget)
	defer qcancel()
	var matches []core.Match
	bestEffort := false
	approx := false
	cm, cascades := m.(core.CascadeMatcher)
	if cascades && *cascade == "on" {
		sp, tp := core.ProfilePair(nil, src, tgt)
		matches, bestEffort, err = cm.MatchCascade(core.WithEpsilon(qctx, *epsilon), sp, tp, 0)
		approx = *epsilon > 0
	} else {
		matches, err = core.MatchWithContext(qctx, m, nil, src, tgt)
	}
	if err != nil {
		if !core.IsBudgetExpiry(ctx, err) {
			return err
		}
		bestEffort = true
	}
	fmt.Printf("%s: %d ranked matches\n", *methodF, len(matches))
	if bestEffort {
		fmt.Printf("budget %s exhausted: best-effort ranking\n", *budget)
	}
	if approx {
		fmt.Printf("approximate: scores within %g of the exact ranking\n", *epsilon)
	}
	top := *topF
	if top > len(matches) {
		top = len(matches)
	}
	for _, m := range matches[:top] {
		fmt.Println(" ", m)
	}
	if stats != nil {
		fmt.Printf("engine: %s (elapsed %s)\n",
			stats.Snapshot(), time.Since(started).Round(time.Millisecond))
	}
	return nil
}

func cmdEvaluate(args []string) error {
	fs := flag.NewFlagSet("evaluate", flag.ExitOnError)
	matches, method, _, _, truthPath, _, err := runMatcher(fs, args)
	if err != nil {
		return err
	}
	if truthPath == "" {
		return fmt.Errorf("evaluate: -truth is required")
	}
	gt, err := readTruth(truthPath)
	if err != nil {
		return err
	}
	recall, err := valentine.RecallAtGT(matches, gt)
	if err != nil {
		return err
	}
	fmt.Printf("%s: recall@ground-truth = %.3f (|GT| = %d)\n", method, recall, gt.Size())
	return nil
}

func readTruth(path string) (*core.GroundTruth, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	records, err := csv.NewReader(f).ReadAll()
	if err != nil {
		return nil, err
	}
	gt := core.NewGroundTruth()
	for i, rec := range records {
		if len(rec) < 2 {
			return nil, fmt.Errorf("truth %s line %d: want 2 columns", path, i+1)
		}
		if i == 0 && strings.EqualFold(rec[0], "source_column") {
			continue
		}
		gt.Add(rec[0], rec[1])
	}
	return gt, nil
}

func cmdExperiment(args []string) error {
	fs := flag.NewFlagSet("experiment", flag.ExitOnError)
	source := fs.String("source", "TPC-DI", "generated source: TPC-DI|OpenData|ChEMBL")
	rows := fs.Int("rows", 120, "rows in the generated source")
	seeds := fs.Int("seeds", 1, "fabrication seeds")
	methodsF := fs.String("methods", "", "comma-separated method subset (default all)")
	parallelism := fs.Int("parallelism", 0, "engine worker-pool size for grid rows (default GOMAXPROCS)")
	timeout := fs.Duration("timeout", 0, "wall-clock budget for the run (default none); expiry abandons outstanding grid rows")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := report.Config{
		Rows: *rows, Seeds: *seeds, Sources: []string{*source},
		Workers: *parallelism, Deadline: *timeout,
	}
	if *methodsF != "" {
		cfg.Methods = strings.Split(*methodsF, ",")
	}
	rs, err := report.RunFabricated(context.Background(), cfg)
	if errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "valentine: -timeout expired; reporting the grid rows that finished")
	} else if err != nil {
		return err
	}
	methods := cfg.Methods
	if len(methods) == 0 {
		methods = experiment.MethodNames()
	}
	fmt.Print(report.FormatFigure(
		fmt.Sprintf("Effectiveness on %s fabricated pairs (min/median/max recall@GT)", *source),
		report.Figure(rs, methods, nil)))
	fmt.Println()
	fmt.Print(report.FormatTableV(rs))
	return nil
}

package main

import (
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"valentine/internal/scenario"
)

const smokeScenario = "../../examples/scenarios/smoke.json"

// TestLoadgenInProcess runs the CLI path end to end: smoke scenario,
// in-process server, JSON report out — and validates the report.
func TestLoadgenInProcess(t *testing.T) {
	out := filepath.Join(t.TempDir(), "report.json")
	if err := cmdLoadgen([]string{"-scenario", smokeScenario, "-q", "-json", out}); err != nil {
		t.Fatalf("loadgen: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep scenario.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if err := rep.Check(); err != nil {
		t.Fatalf("written report fails schema check: %v", err)
	}
	if rep.Errors != 0 {
		t.Fatalf("replay had %d errors", rep.Errors)
	}
	if rep.Scenario != "smoke" {
		t.Errorf("scenario name = %q", rep.Scenario)
	}
}

// TestLoadgenAgainstServe drives a `valentine serve` instance with -addr —
// the remote-target path, loadgen and server in separate command stacks.
func TestLoadgenAgainstServe(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: serve+loadgen integration")
	}
	err := runServe(t, nil, func(baseURL string) {
		if err := cmdLoadgen([]string{"-scenario", smokeScenario, "-q", "-addr", baseURL}); err != nil {
			t.Errorf("loadgen against serve: %v", err)
		}
		// The corpus must be live in the served catalog afterwards.
		var tabs struct {
			Tables []string `json:"tables"`
		}
		if code := httpJSON(t, http.MethodGet, baseURL+"/v1/tables", nil, &tabs); code != 200 {
			t.Fatalf("GET /v1/tables = %d", code)
		}
		corpus := 0
		for _, name := range tabs.Tables {
			if strings.HasPrefix(name, "c0") {
				corpus++
			}
		}
		if corpus == 0 {
			t.Error("no corpus tables live after replay")
		}
	})
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
}

func TestLoadgenBadInvocation(t *testing.T) {
	if err := cmdLoadgen(nil); err == nil {
		t.Error("missing -scenario accepted")
	}
	if err := cmdLoadgen([]string{"-scenario", "no-such-file.json"}); err == nil {
		t.Error("missing scenario file accepted")
	}
}

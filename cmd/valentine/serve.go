package main

// valentine serve: the long-running serving mode — a live discovery catalog
// behind an HTTP API. Tables can be loaded from an index file/snapshot or a
// CSV directory at startup, then upserted/removed over HTTP while searches
// run; the catalog periodically snapshots to disk and a final snapshot is
// written on graceful shutdown (SIGINT/SIGTERM drain in-flight requests).

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"valentine"
	"valentine/internal/discovery"
	"valentine/internal/server"
	"valentine/internal/wal"
)

// serveHooks lets tests observe the bound addresses and drive shutdown; all
// are nil in production use.
var serveHooks struct {
	ready      func(addr string)
	pprofReady func(addr string)
	shutdown   <-chan struct{}
}

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	indexPath := fs.String("index", "", "index file or snapshot directory to serve (optional)")
	dir := fs.String("dir", "", "directory of CSVs to ingest at startup (optional)")
	snapshotDir := fs.String("snapshot", "", "directory for periodic catalog snapshots (optional; resumed from if it exists)")
	snapshotEvery := fs.Duration("snapshot-every", 30*time.Second, "interval between periodic snapshots")
	timeout := fs.Duration("timeout", 30*time.Second, "per-request deadline")
	parallelism := fs.Int("parallelism", 0, "engine worker-pool size per request (default GOMAXPROCS)")
	signature := fs.Int("signature", 0, "MinHash signature length for a fresh catalog (default 128)")
	bands := fs.Int("bands", 0, "LSH bands for a fresh catalog (default 32)")
	tokenBoost := fs.Float64("token-boost", 0, "blend column-name token overlap into scores (fresh catalog)")
	sealAfter := fs.Int("seal-after", 0, "tables per memtable segment before sealing (default 16)")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof on this extra address (e.g. localhost:6060; default off)")
	walPath := fs.String("wal", "", "write-ahead log file: ingest is logged before it is acknowledged and replayed on restart (optional)")
	fsync := fs.String("fsync", "always", "WAL fsync policy: always (every ack durable), batch (background interval), none")
	if err := fs.Parse(args); err != nil {
		return err
	}
	walSync, err := wal.ParseSyncPolicy(*fsync)
	if err != nil {
		return err
	}

	// Resolve the starting catalog: an explicit -index wins; otherwise an
	// existing -snapshot directory is resumed; otherwise a fresh catalog.
	// A loaded catalog keeps its persisted options, so explicit geometry/
	// scoring flags would be silently discarded — reject them instead
	// (mirroring `index -append`).
	var catalogFlags []string
	fs.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "signature", "bands", "token-boost", "seal-after":
			catalogFlags = append(catalogFlags, "-"+f.Name)
		}
	})
	rejectCatalogFlags := func(source string) error {
		if len(catalogFlags) == 0 {
			return nil
		}
		return fmt.Errorf("serve: %s cannot be combined with %s (the loaded catalog keeps its options)",
			strings.Join(catalogFlags, ", "), source)
	}
	var ix *valentine.DiscoveryIndex
	switch {
	case *indexPath != "":
		if err := rejectCatalogFlags("-index"); err != nil {
			return err
		}
		ix, err = valentine.LoadDiscoveryIndexFile(*indexPath)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "serve: loaded %d tables (%d columns) from %s\n",
			ix.NumTables(), ix.NumColumns(), *indexPath)
	case *snapshotDir != "" && snapshotExists(*snapshotDir):
		if err := rejectCatalogFlags("an existing -snapshot directory"); err != nil {
			return err
		}
		ix, err = discovery.LoadSnapshot(*snapshotDir)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "serve: resumed %d tables (%d columns) from snapshot %s\n",
			ix.NumTables(), ix.NumColumns(), *snapshotDir)
	default:
		ix = valentine.NewDiscoveryIndex(valentine.DiscoveryOptions{
			Signature:  *signature,
			Bands:      *bands,
			TokenBoost: *tokenBoost,
			SealAfter:  *sealAfter,
		})
	}
	if *dir != "" {
		tables, _, err := readCSVDir(*dir, "")
		if err != nil {
			return err
		}
		for _, t := range tables {
			if err := ix.Upsert(t); err != nil {
				fmt.Fprintf(os.Stderr, "serve: skipping %s: %v\n", t.Name, err)
			}
		}
		fmt.Fprintf(os.Stderr, "serve: ingested %s → %d tables live\n", *dir, ix.NumTables())
	}

	// A -snapshot directory already holding a *different* catalog's snapshot
	// must not be adopted as this catalog's save target — the first periodic
	// save would overwrite it. Refuse before accepting any writes. (A
	// catalog resumed from the directory trivially carries its lineage.)
	if *snapshotDir != "" && snapshotExists(*snapshotDir) {
		lin, lerr := discovery.SnapshotLineage(*snapshotDir)
		if lerr != nil {
			return fmt.Errorf("serve: reading snapshot manifest in %s: %w", *snapshotDir, lerr)
		}
		if lin != ix.Lineage() {
			return fmt.Errorf("serve: snapshot directory %s holds catalog lineage %x but the serving catalog is lineage %x — refusing to overwrite another catalog's snapshot",
				*snapshotDir, lin, ix.Lineage())
		}
	}

	srv, err := server.New(server.Config{
		Index:          ix,
		RequestTimeout: *timeout,
		Parallelism:    *parallelism,
		SnapshotDir:    *snapshotDir,
		SnapshotEvery:  *snapshotEvery,
		WALPath:        *walPath,
		WALSync:        walSync,
	})
	if err != nil {
		return err
	}
	if *walPath != "" {
		fmt.Fprintf(os.Stderr, "serve: write-ahead log at %s (fsync %s)\n", *walPath, walSync)
	}

	// Opt-in profiling endpoint on its own listener, never on the serving
	// address: hot paths (scoring kernels, ingest, search) can be profiled
	// in situ with `go tool pprof http://<pprof-addr>/debug/pprof/profile`
	// without exposing pprof to serving traffic.
	var pprofLn net.Listener
	if *pprofAddr != "" {
		var err error
		pprofLn, err = net.Listen("tcp", *pprofAddr)
		if err != nil {
			return fmt.Errorf("serve: pprof listener: %w", err)
		}
		defer pprofLn.Close()
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go http.Serve(pprofLn, pmux)
		fmt.Fprintf(os.Stderr, "serve: pprof on http://%s/debug/pprof/\n", pprofLn.Addr())
		if serveHooks.pprofReady != nil {
			serveHooks.pprofReady(pprofLn.Addr().String())
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	fmt.Fprintf(os.Stderr, "serve: listening on %s (%d tables live)\n", ln.Addr(), ix.NumTables())
	if serveHooks.ready != nil {
		serveHooks.ready(ln.Addr().String())
	}

	// Graceful shutdown: SIGINT/SIGTERM (or the test hook) stops accepting,
	// drains in-flight requests, flushes the ingest batcher, and writes a
	// final snapshot when one is configured.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		srv.Close()
		return err
	case <-ctx.Done():
	case <-serveHooks.shutdown: // nil outside tests: never fires
	}
	fmt.Fprintln(os.Stderr, "serve: shutting down, draining in-flight requests...")
	drainCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := hs.Shutdown(drainCtx); err != nil {
		srv.Close()
		return err
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		srv.Close()
		return err
	}
	if err := srv.Close(); err != nil {
		return fmt.Errorf("serve: final snapshot: %w", err)
	}
	if *snapshotDir != "" {
		fmt.Fprintf(os.Stderr, "serve: final snapshot written to %s\n", *snapshotDir)
	}
	return nil
}

// snapshotExists reports whether dir holds a catalog snapshot manifest.
func snapshotExists(dir string) bool {
	_, err := os.Stat(filepath.Join(dir, "MANIFEST.gob"))
	return err == nil
}

package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"valentine"
	"valentine/internal/discovery"
)

// runServe runs cmdServe on an ephemeral port, hands the base URL to f,
// then drives a graceful shutdown and returns cmdServe's error.
func runServe(t *testing.T, args []string, f func(baseURL string)) error {
	t.Helper()
	ready := make(chan string, 1)
	shutdown := make(chan struct{})
	serveHooks.ready = func(addr string) { ready <- addr }
	serveHooks.shutdown = shutdown
	defer func() {
		serveHooks.ready = nil
		serveHooks.shutdown = nil
	}()
	done := make(chan error, 1)
	go func() {
		done <- cmdServe(append([]string{"-addr", "127.0.0.1:0"}, args...))
	}()
	select {
	case addr := <-ready:
		f("http://" + addr)
	case err := <-done:
		t.Fatalf("serve exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("serve did not become ready")
	}
	close(shutdown)
	select {
	case err := <-done:
		return err
	case <-time.After(20 * time.Second):
		t.Fatal("serve did not shut down")
		return nil
	}
}

func httpJSON(t *testing.T, method, url string, body, out any) int {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, url, &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

// TestServeEndToEnd: start from a CSV lake, search over HTTP, upsert a new
// table, remove one, and shut down gracefully with a final snapshot — then
// resume from that snapshot and see the mutated catalog.
func TestServeEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("long-running serve lifecycle test")
	}
	lake, queryPath := writeLake(t)
	snap := filepath.Join(t.TempDir(), "snap")

	query, err := readCSV(t, queryPath)
	if err != nil {
		t.Fatal(err)
	}
	searchReq := map[string]any{"table": query, "mode": "join", "k": 5}

	err = runServe(t, []string{"-dir", lake, "-snapshot", snap, "-snapshot-every", "1h"}, func(base string) {
		// Search finds the joinable fragment.
		var sr struct {
			Results []struct {
				Table string  `json:"table"`
				Score float64 `json:"score"`
			} `json:"results"`
		}
		if code := httpJSON(t, http.MethodPost, base+"/v1/search", searchReq, &sr); code != http.StatusOK {
			t.Fatalf("search: status %d", code)
		}
		found := false
		for _, r := range sr.Results {
			if r.Table == "crm_extract" {
				found = true
			}
		}
		if !found {
			t.Errorf("search results missing crm_extract: %+v", sr.Results)
		}
		// Upsert a fresh table, remove an existing one.
		up := map[string]any{"columns": []map[string]any{
			{"name": "k", "values": []string{"a", "b", "c"}},
		}}
		if code := httpJSON(t, http.MethodPut, base+"/v1/tables/live_extra", up, nil); code != http.StatusOK {
			t.Errorf("upsert: status %d", code)
		}
		if code := httpJSON(t, http.MethodDelete, base+"/v1/tables/assay", nil, nil); code != http.StatusOK {
			t.Errorf("delete: status %d", code)
		}
		var stats struct {
			Catalog struct {
				Tables int `json:"tables"`
			} `json:"catalog"`
		}
		if code := httpJSON(t, http.MethodGet, base+"/v1/stats", nil, &stats); code != http.StatusOK {
			t.Errorf("stats: status %d", code)
		}
		if stats.Catalog.Tables != 3 {
			t.Errorf("live tables = %d, want 3 (2 lake + query + extra - assay)", stats.Catalog.Tables)
		}
	})
	if err != nil {
		t.Fatalf("serve: %v", err)
	}

	// The final snapshot reflects the HTTP mutations; `serve -snapshot`
	// resumes from it.
	ix, err := discovery.LoadSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	names := strings.Join(ix.Tables(), ",")
	if !strings.Contains(names, "live_extra") || strings.Contains(names, "assay") {
		t.Fatalf("snapshot tables = %s", names)
	}
	err = runServe(t, []string{"-snapshot", snap, "-snapshot-every", "1h"}, func(base string) {
		var tl struct {
			Tables []string `json:"tables"`
		}
		if code := httpJSON(t, http.MethodGet, base+"/v1/tables", nil, &tl); code != http.StatusOK {
			t.Fatalf("tables: status %d", code)
		}
		if got := strings.Join(tl.Tables, ","); got != names {
			t.Errorf("resumed tables = %s, want %s", got, names)
		}
	})
	if err != nil {
		t.Fatalf("serve (resume): %v", err)
	}
}

// readCSV loads a CSV into the server's wire-table shape.
func readCSV(t *testing.T, path string) (map[string]any, error) {
	t.Helper()
	tab, err := valentine.ReadCSVFile(path)
	if err != nil {
		return nil, err
	}
	cols := make([]map[string]any, 0, len(tab.Columns))
	for _, c := range tab.Columns {
		cols = append(cols, map[string]any{"name": c.Name, "values": c.Values})
	}
	return map[string]any{"name": tab.Name, "columns": cols}, nil
}

func TestIndexAppend(t *testing.T) {
	dir, _ := writeLake(t)
	idxPath := filepath.Join(t.TempDir(), "lake.idx")
	out := captureStdout(t, func() error {
		return cmdIndex([]string{"-dir", dir, "-out", idxPath})
	})
	if !strings.Contains(out, "indexed 3 tables") {
		t.Fatalf("initial index output: %s", out)
	}

	// A second directory with one new table and one updated version of an
	// already-indexed table.
	dir2 := t.TempDir()
	extra := fmt.Sprintf("part_id,price\n%s\n", "p1,10\np2,20\np3,30")
	if err := writeFile(filepath.Join(dir2, "parts.csv"), extra); err != nil {
		t.Fatal(err)
	}
	if err := writeFile(filepath.Join(dir2, "assay.csv"), "compound,reading\nc1,0.5\nc2,0.7\n"); err != nil {
		t.Fatal(err)
	}
	out = captureStdout(t, func() error {
		return cmdIndex([]string{"-dir", dir2, "-out", idxPath, "-append"})
	})
	// 3 original + 1 new; "assay" replaced in place, not duplicated.
	if !strings.Contains(out, "appended 4 tables") {
		t.Fatalf("append output: %s", out)
	}

	// The appended index serves both old and new content.
	ix, err := discovery.LoadFile(idxPath)
	if err != nil {
		t.Fatal(err)
	}
	names := strings.Join(ix.Tables(), ",")
	for _, want := range []string{"parts", "assay", "crm_extract", "query"} {
		if !strings.Contains(names, want) {
			t.Errorf("appended index missing %s (have %s)", want, names)
		}
	}
	// The replaced table carries the new schema.
	ps := ix.Profiles("assay")
	if len(ps) != 2 || ps[0].Column != "compound" {
		t.Errorf("assay profiles after append = %+v", ps)
	}

	// -append on a missing index file fails loudly rather than silently
	// rebuilding.
	if err := cmdIndex([]string{"-dir", dir2, "-out", filepath.Join(t.TempDir(), "none.idx"), "-append"}); err == nil {
		t.Error("append to a missing index should fail")
	}
	// Geometry/scoring flags conflict with -append: the loaded index keeps
	// its options, so silently accepting them would mislead.
	err = cmdIndex([]string{"-dir", dir2, "-out", idxPath, "-append", "-signature", "64"})
	if err == nil || !strings.Contains(err.Error(), "-signature") {
		t.Errorf("append with -signature should fail naming the flag, got %v", err)
	}
	err = cmdIndex([]string{"-dir", dir2, "-out", idxPath, "-append", "-token-boost", "0.2"})
	if err == nil || !strings.Contains(err.Error(), "-token-boost") {
		t.Errorf("append with -token-boost should fail naming the flag, got %v", err)
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

// TestServeRejectsCatalogFlagsOnLoad: a loaded catalog keeps its persisted
// options, so explicit geometry/scoring flags must be rejected, not
// silently discarded (mirroring `index -append`).
func TestServeRejectsCatalogFlagsOnLoad(t *testing.T) {
	dir, _ := writeLake(t)
	idxPath := filepath.Join(t.TempDir(), "lake.idx")
	captureStdout(t, func() error {
		return cmdIndex([]string{"-dir", dir, "-out", idxPath})
	})
	err := cmdServe([]string{"-index", idxPath, "-signature", "64"})
	if err == nil || !strings.Contains(err.Error(), "-signature") {
		t.Errorf("serve -index with -signature should fail naming the flag, got %v", err)
	}
	// Resuming from an existing snapshot dir conflicts the same way.
	snap := filepath.Join(t.TempDir(), "snap")
	ix, err := discovery.LoadFile(idxPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.SaveSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	err = cmdServe([]string{"-snapshot", snap, "-seal-after", "4"})
	if err == nil || !strings.Contains(err.Error(), "-seal-after") {
		t.Errorf("serve resume with -seal-after should fail naming the flag, got %v", err)
	}
}

// TestServeWALRestartRecovers: with -wal and no snapshot, acknowledged
// ingest survives a restart — the log is replayed into a fresh catalog on
// the next serve.
func TestServeWALRestartRecovers(t *testing.T) {
	walPath := filepath.Join(t.TempDir(), "ops.wal")
	up := map[string]any{"columns": []map[string]any{
		{"name": "k", "values": []string{"a", "b", "c", "d"}},
	}}
	err := runServe(t, []string{"-wal", walPath}, func(base string) {
		if code := httpJSON(t, http.MethodPut, base+"/v1/tables/durable", up, nil); code != http.StatusOK {
			t.Fatalf("upsert: status %d", code)
		}
	})
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	err = runServe(t, []string{"-wal", walPath}, func(base string) {
		// Replay is asynchronous: wait for the server to report ok.
		deadline := time.Now().Add(10 * time.Second)
		for {
			var h struct {
				Status string `json:"status"`
			}
			httpJSON(t, http.MethodGet, base+"/v1/healthz", nil, &h)
			if h.Status == "ok" {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("server stuck in status %q", h.Status)
			}
			time.Sleep(20 * time.Millisecond)
		}
		var tl struct {
			Tables []string `json:"tables"`
		}
		if code := httpJSON(t, http.MethodGet, base+"/v1/tables", nil, &tl); code != http.StatusOK {
			t.Fatalf("tables: status %d", code)
		}
		if got := strings.Join(tl.Tables, ","); got != "durable" {
			t.Errorf("recovered tables = %q, want durable", got)
		}
	})
	if err != nil {
		t.Fatalf("serve (restart): %v", err)
	}
}

// TestServeRejectsForeignSnapshotLineage: pointing -snapshot at a directory
// holding a different catalog's snapshot must fail before any write is
// accepted, not overwrite it at the first periodic save.
func TestServeRejectsForeignSnapshotLineage(t *testing.T) {
	snapA := filepath.Join(t.TempDir(), "snapA")
	ixA := discovery.New(discovery.Options{})
	if err := ixA.Add(readTestTable(t, "held", "x", "y", "z")); err != nil {
		t.Fatal(err)
	}
	if err := ixA.SaveSnapshot(snapA); err != nil {
		t.Fatal(err)
	}
	snapB := filepath.Join(t.TempDir(), "snapB")
	ixB := discovery.New(discovery.Options{})
	if err := ixB.Add(readTestTable(t, "other", "p", "q", "r")); err != nil {
		t.Fatal(err)
	}
	if err := ixB.SaveSnapshot(snapB); err != nil {
		t.Fatal(err)
	}
	err := cmdServe([]string{"-index", snapB, "-snapshot", snapA})
	if err == nil || !strings.Contains(err.Error(), "refusing to overwrite") {
		t.Errorf("serve over a foreign snapshot dir: err = %v, want lineage refusal", err)
	}
}

// TestServeRejectsBadFsyncPolicy: -fsync takes always|batch|none only.
func TestServeRejectsBadFsyncPolicy(t *testing.T) {
	err := cmdServe([]string{"-fsync", "sometimes"})
	if err == nil || !strings.Contains(err.Error(), "sometimes") {
		t.Errorf("serve -fsync sometimes: err = %v, want policy rejection", err)
	}
}

// readTestTable builds a tiny one-column table for lineage fixtures.
func readTestTable(t *testing.T, name string, vals ...string) *valentine.Table {
	t.Helper()
	return valentine.NewTable(name).AddColumn("k", vals)
}

// TestServePprofEndpoint: -pprof must expose net/http/pprof on its own
// listener (never the serving address), and leaving the flag off must not
// open any profiling endpoint on the API.
func TestServePprofEndpoint(t *testing.T) {
	pprofReady := make(chan string, 1)
	serveHooks.pprofReady = func(addr string) { pprofReady <- addr }
	defer func() { serveHooks.pprofReady = nil }()
	err := runServe(t, []string{"-pprof", "127.0.0.1:0"}, func(baseURL string) {
		var pprofAddr string
		select {
		case pprofAddr = <-pprofReady:
		case <-time.After(5 * time.Second):
			t.Fatal("pprof listener did not come up")
		}
		resp, err := http.Get("http://" + pprofAddr + "/debug/pprof/cmdline")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("pprof cmdline status = %d", resp.StatusCode)
		}
		// The serving mux must not expose pprof.
		resp, err = http.Get(baseURL + "/debug/pprof/cmdline")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			t.Fatal("pprof must not be reachable on the serving address")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

package main

// valentine loadgen: replay a declarative scenario file against a live
// catalog server. With no -addr a fresh in-process server is started, so a
// checked-in scenario is a self-contained, reproducible load test; with
// -addr the same traffic drives a remote `valentine serve` instance.

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"

	"valentine/internal/scenario"
)

func cmdLoadgen(args []string) error {
	fs := flag.NewFlagSet("loadgen", flag.ExitOnError)
	file := fs.String("scenario", "", "scenario JSON file (required)")
	addr := fs.String("addr", "", "base URL of a running server, e.g. http://127.0.0.1:8080 (default: in-process)")
	jsonOut := fs.String("json", "", "write the full replay report as JSON to this file ('-' for stdout)")
	quiet := fs.Bool("q", false, "suppress the human-readable summary")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *file == "" {
		return fmt.Errorf("loadgen: -scenario is required")
	}
	s, err := scenario.ParseFile(*file)
	if err != nil {
		return err
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "loadgen: %s\n", s)
	}

	// SIGINT/SIGTERM aborts the replay cleanly mid-dispatch.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	rep, err := scenario.Run(ctx, s, *addr)
	if err != nil {
		return err
	}

	if !*quiet {
		printReport(rep)
	}
	if *jsonOut != "" {
		data, err := rep.WriteJSON()
		if err != nil {
			return err
		}
		if *jsonOut == "-" {
			_, err = os.Stdout.Write(data)
		} else {
			err = os.WriteFile(*jsonOut, data, 0o644)
		}
		if err != nil {
			return err
		}
	}
	if rep.Errors > 0 {
		return fmt.Errorf("loadgen: %d of %d ops failed", rep.Errors, rep.Ops)
	}
	return nil
}

func printReport(rep *scenario.Report) {
	fmt.Printf("scenario %s (seed %d)\n", rep.Scenario, rep.Seed)
	fmt.Printf("  corpus: %d tables / %d columns / %d rows (+%d churn), hash %s\n",
		rep.Corpus.Tables, rep.Corpus.Columns, rep.Corpus.Rows, rep.Corpus.ChurnTables,
		rep.Corpus.Hash[:12])
	fmt.Printf("  load:   %d ms\n", rep.LoadMS)
	fmt.Printf("  replay: %d ops in %d ms — %.0f qps achieved (target %.0f), %d errors%s\n",
		rep.Ops, rep.ElapsedMS, rep.AchievedQPS, rep.TargetQPS, rep.Errors,
		errorKindsSuffix(rep.ErrorKinds))
	for _, kind := range []string{"ingest", "search", "match"} {
		ep, ok := rep.Endpoints[kind]
		if !ok {
			continue
		}
		fmt.Printf("  %-7s n=%-6d err=%-4d p50=%dµs p95=%dµs p99=%dµs max=%dµs%s\n",
			kind, ep.Count, ep.Errors, ep.P50US, ep.P95US, ep.P99US, ep.MaxUS,
			errorKindsSuffix(ep.ErrorKinds))
	}
	fmt.Printf("  probes: %d top-%d queries, ops hash %s\n",
		len(rep.Probes), topKOf(rep), rep.OpsHash[:12])
}

// errorKindsSuffix renders a " (kind=n ...)" breakdown in stable order, or
// nothing when a run had no failures.
func errorKindsSuffix(kinds map[string]int64) string {
	if len(kinds) == 0 {
		return ""
	}
	names := make([]string, 0, len(kinds))
	for k := range kinds {
		names = append(names, k)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteString(" (")
	for i, k := range names {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%d", k, kinds[k])
	}
	b.WriteByte(')')
	return b.String()
}

// topKOf infers the probe k from the report (probes all share the scenario's
// top_k; the report doesn't restate the spec).
func topKOf(rep *scenario.Report) int {
	k := 0
	for _, p := range rep.Probes {
		if len(p.TopK) > k {
			k = len(p.TopK)
		}
	}
	return k
}

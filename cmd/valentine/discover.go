package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"valentine"
	"valentine/internal/table"
)

// cmdDiscover ranks the CSV tables in a directory by their joinability or
// unionability with a query table — Valentine as a dataset-discovery
// component, end to end.
func cmdDiscover(args []string) error {
	fs := flag.NewFlagSet("discover", flag.ExitOnError)
	query := fs.String("query", "", "query CSV (required)")
	dir := fs.String("dir", ".", "directory of candidate CSVs")
	mode := fs.String("mode", "join", "join|union")
	method := fs.String("method", valentine.MethodComaInstance, "matching method")
	top := fs.Int("top", 10, "candidates to print")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *query == "" {
		return fmt.Errorf("discover: -query is required")
	}
	if *mode != "join" && *mode != "union" {
		return fmt.Errorf("discover: mode %q is not join|union", *mode)
	}
	q, err := valentine.ReadCSVFile(*query)
	if err != nil {
		return err
	}
	m, err := valentine.NewMatcher(*method, nil)
	if err != nil {
		return err
	}

	entries, err := os.ReadDir(*dir)
	if err != nil {
		return err
	}
	queryAbs, _ := filepath.Abs(*query)
	type candidate struct {
		name  string
		score float64
		best  valentine.Match
	}
	var ranked []candidate
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".csv") {
			continue
		}
		path := filepath.Join(*dir, e.Name())
		if abs, _ := filepath.Abs(path); abs == queryAbs {
			continue // skip the query itself
		}
		cand, err := valentine.ReadCSVFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "discover: skipping %s: %v\n", path, err)
			continue
		}
		matches, err := m.Match(q, cand)
		if err != nil {
			fmt.Fprintf(os.Stderr, "discover: skipping %s: %v\n", path, err)
			continue
		}
		score, best := discoveryScore(matches, *mode, q)
		ranked = append(ranked, candidate{name: e.Name(), score: score, best: best})
	}
	if len(ranked) == 0 {
		return fmt.Errorf("discover: no candidate CSVs in %s", *dir)
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].score != ranked[j].score {
			return ranked[i].score > ranked[j].score
		}
		return ranked[i].name < ranked[j].name
	})
	fmt.Printf("%s-ability of %d candidates with %q (%s):\n", *mode, len(ranked), q.Name, *method)
	if *top > len(ranked) {
		*top = len(ranked)
	}
	for i, c := range ranked[:*top] {
		fmt.Printf("%2d. %-30s %.3f", i+1, c.name, c.score)
		if c.best.SourceColumn != "" {
			fmt.Printf("  via %s ~ %s", c.best.SourceColumn, c.best.TargetColumn)
		}
		fmt.Println()
	}
	return nil
}

// discoveryScore converts a ranked match list into one candidate score:
// joinability is the best single correspondence (one good join column
// suffices); unionability is the mean of each query column's best match
// (union needs every column covered).
func discoveryScore(matches []valentine.Match, mode string, query *table.Table) (float64, valentine.Match) {
	if len(matches) == 0 {
		return 0, valentine.Match{}
	}
	if mode == "join" {
		return matches[0].Score, matches[0]
	}
	bestPer := make(map[string]float64, query.NumColumns())
	for _, m := range matches {
		if m.Score > bestPer[m.SourceColumn] {
			bestPer[m.SourceColumn] = m.Score
		}
	}
	sum := 0.0
	for _, c := range query.ColumnNames() {
		sum += bestPer[c]
	}
	return sum / float64(query.NumColumns()), matches[0]
}

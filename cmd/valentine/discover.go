package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"valentine"
	"valentine/internal/core"
	"valentine/internal/discovery"
	"valentine/internal/engine"
	"valentine/internal/intern"
	"valentine/internal/planner"
	"valentine/internal/table"
)

// cmdDiscover ranks the CSV tables in a directory by their joinability or
// unionability with a query table — Valentine as a dataset-discovery
// component, end to end.
//
// The whole corpus (plus the query) is profiled once into a shared
// profile store up front, so the candidate-generation phase and the
// matcher re-scoring phase reuse the same distinct sets, name tokens and
// MinHash signatures instead of re-deriving them per phase and per table.
//
// Join-mode discover is a two-phase pipeline: an in-memory column index
// prunes the corpus to candidate tables (columns colliding with the query
// in an LSH band), then only those candidates are re-scored with the
// requested matcher. Union mode cannot prune by value sketch — a
// schema-identical table with disjoint values (last year's export) would
// never collide — so it prescreens on schema signals instead: a candidate
// that cannot type-cover the query's columns and shares no name token
// with them is skipped. Tables pruned by either phase are appended with
// score 0, so the output still covers the whole corpus.
func cmdDiscover(args []string) error {
	fs := flag.NewFlagSet("discover", flag.ExitOnError)
	query := fs.String("query", "", "query CSV (required)")
	dir := fs.String("dir", ".", "directory of candidate CSVs")
	mode := fs.String("mode", "join", "join|union")
	method := fs.String("method", valentine.MethodComaInstance, "matching method for re-scoring candidates")
	top := fs.Int("top", 10, "candidates to print")
	parallelism := fs.Int("parallelism", 0, "engine worker-pool size (default GOMAXPROCS)")
	timeout := fs.Duration("timeout", 0, "wall-clock budget for the whole discovery (default none); expiry aborts mid-scoring")
	budget := fs.Duration("budget", 0, "per-query latency budget for the re-scoring phase (default none); expiry prints the best-effort ranking so far")
	cascade := fs.String("cascade", "on", "on|off: cost-based bound-then-refine cascade for candidate re-scoring (off = full fidelity on every candidate)")
	epsilon := fs.Float64("epsilon", 0, "approximation budget in [0,1): cascade prunes more aggressively, every returned score stays within epsilon of the true top-k (0 = exact)")
	verbose := fs.Bool("v", false, "print engine pipeline stats (candidates, bounded, pruned, scored, per-stage wall time)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *query == "" {
		return fmt.Errorf("discover: -query is required")
	}
	if *cascade != "on" && *cascade != "off" {
		return fmt.Errorf("discover: -cascade %q is not on|off", *cascade)
	}
	if err := core.ValidateBudget(*budget); err != nil {
		return fmt.Errorf("discover: -%v", err)
	}
	if err := core.ValidateEpsilon(*epsilon); err != nil {
		return fmt.Errorf("discover: -%v", err)
	}
	cascadeOn := *cascade == "on"
	// One engine context for the whole invocation: parallelism and deadline
	// flow to candidate generation, index probing and matcher re-scoring.
	ctx, cancel := engine.Options{Parallelism: *parallelism, Deadline: *timeout}.Start(context.Background())
	defer cancel()
	var stats *engine.Stats
	if *verbose {
		ctx, stats = engine.WithStats(ctx)
	}
	started := time.Now()
	dmode, err := discovery.ParseMode(*mode)
	if err != nil {
		return fmt.Errorf("discover: mode %q is not join|union", *mode)
	}
	q, err := valentine.ReadCSVFile(*query)
	if err != nil {
		return err
	}
	m, err := valentine.NewMatcher(*method, nil)
	if err != nil {
		return err
	}

	queryAbs, err := filepath.Abs(*query)
	if err != nil {
		return err
	}
	tables, files, err := readCSVDir(*dir, queryAbs)
	if err != nil {
		return err
	}
	if len(tables) == 0 {
		return fmt.Errorf("discover: no candidate CSVs in %s", *dir)
	}

	// One shared profile store for the whole invocation: the query is
	// warmed eagerly (every phase touches it), corpus tables are profiled
	// lazily — candidate generation forces only the cheap artifacts
	// (types, tokens, signatures), and full profiling happens just for the
	// tables that survive into re-scoring.
	store := valentine.NewProfileStore()
	store.Warm(q)

	// Phase 1 (join mode): index the corpus once and let the LSH shards
	// nominate candidate tables. Union mode prescreens on schema signals.
	byName := make(map[string]*table.Table, len(tables))
	for _, t := range tables {
		byName[t.Name] = t
	}
	var nominate []string
	if dmode == valentine.DiscoverJoin {
		ix := valentine.NewDiscoveryIndex(valentine.DiscoveryOptions{})
		for _, t := range tables {
			if err := ix.AddProfiled(store.Of(t)); err != nil {
				fmt.Fprintf(os.Stderr, "discover: skipping %s: %v\n", files[t.Name], err)
				delete(byName, t.Name)
			}
		}
		// The index skips self-matches by table name; if a corpus file
		// shares the query file's basename they collide, so search under
		// a name no CSV-derived table can have.
		searchQ := q
		if _, clash := byName[q.Name]; clash {
			searchQ = q.Clone()
			searchQ.Name = q.Name + "\x00query"
		}
		nominated, err := ix.SearchProfiledContext(ctx, store.Of(searchQ), dmode, 0)
		if err != nil {
			return err
		}
		for _, r := range nominated {
			nominate = append(nominate, r.Table)
		}
	} else {
		cands := make([]*valentine.TableProfile, 0, len(tables))
		for _, t := range tables {
			cands = append(cands, store.Of(t))
		}
		nominate = unionPrescreen(store.Of(q), cands)
	}

	// Phase 2: re-scoring of nominated candidates through the planner's
	// cost-based cascade — cheap admissible bounds first, the full matcher
	// only on candidates whose bound reaches the top-k cutoff. With
	// -cascade=off every candidate is fully scored (and warmed eagerly, as
	// the pre-cascade pipeline did); the cascade instead lets pruned
	// candidates skip full profiling entirely.
	nominated := make([]*table.Table, 0, len(nominate))
	for _, name := range nominate {
		if t := byName[name]; t != nil {
			nominated = append(nominated, t)
		}
	}
	cands := make([]planner.Candidate, len(nominated))
	for i, t := range nominated {
		cands[i] = planner.Candidate{Name: files[t.Name], Profile: store.Of(t)}
	}
	qctx, qcancel := core.BudgetContext(ctx, *budget)
	defer qcancel()
	qctx = core.WithEpsilon(qctx, *epsilon)
	var rr *planner.RerankResult
	var rerr error
	if cascadeOn {
		rr, rerr = planner.Rerank(qctx, m, store.Of(q), cands, *mode, *top)
	} else {
		store.Warm(nominated...)
		rr, rerr = planner.RerankFull(qctx, m, store.Of(q), cands, *mode, 0)
	}
	if rerr != nil && !core.IsBudgetExpiry(ctx, rerr) {
		return rerr
	}
	errNames := make([]string, 0, len(rr.Errs))
	for name := range rr.Errs {
		errNames = append(errNames, name)
	}
	sort.Strings(errNames)
	for _, name := range errNames {
		fmt.Fprintf(os.Stderr, "discover: skipping %s: %v\n", name, rr.Errs[name])
	}
	type candidate struct {
		name  string
		score float64
		best  valentine.Match
	}
	ranked := make([]candidate, 0, len(byName))
	for _, r := range rr.Ranked {
		ranked = append(ranked, candidate{name: r.Name, score: r.Score, best: r.Best})
	}
	// Tables pruned before matching (phase 1) still appear, at score 0, so
	// the output covers the whole corpus; candidates the cascade pruned or
	// a budget skipped are provably (resp. knowably) outside the top-k and
	// are reported via the counters instead.
	nominatedSet := make(map[string]bool, len(nominated))
	for _, t := range nominated {
		nominatedSet[t.Name] = true
	}
	pruned := 0
	for name := range byName {
		if !nominatedSet[name] {
			ranked = append(ranked, candidate{name: files[name]})
			pruned++
		}
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].score != ranked[j].score {
			return ranked[i].score > ranked[j].score
		}
		return ranked[i].name < ranked[j].name
	})
	fmt.Printf("%s-ability of %d candidates with %q (%s; %d pruned before matching):\n",
		*mode, len(byName), q.Name, *method, pruned)
	if rr.BestEffort {
		fmt.Printf("budget %s exhausted: best-effort ranking (%d candidates skipped, %d pruned by bounds)\n",
			*budget, rr.Skipped, rr.Pruned)
	}
	if cascadeOn && *epsilon > 0 {
		fmt.Printf("approximate: scores within %g of the exact top-%d\n", *epsilon, *top)
	}
	if *top > len(ranked) {
		*top = len(ranked)
	}
	for i, c := range ranked[:*top] {
		fmt.Printf("%2d. %-30s %.3f", i+1, c.name, c.score)
		if c.best.SourceColumn != "" {
			fmt.Printf("  via %s ~ %s", c.best.SourceColumn, c.best.TargetColumn)
		}
		fmt.Println()
	}
	if stats != nil {
		fmt.Printf("engine: %s (elapsed %s, parallelism %d)\n",
			stats.Snapshot(), time.Since(started).Round(time.Millisecond),
			engine.OptionsFrom(ctx).Workers())
	}
	return nil
}

// unionPrescreen cheaply screens union-search candidates on signals cached
// in their profiles, before any full matcher runs. A candidate survives
// when it could plausibly union with the query:
//
//   - type coverage: every query column has at least one type-compatible
//     candidate column (a union needs every query column covered, so a
//     table that cannot cover even the types will score near zero), or
//   - name evidence: any candidate column shares a name token with a query
//     column — a name match is always worth the full matcher's judgment,
//     whatever the types say, or
//   - value evidence: any candidate column's MinHash signature estimates a
//     positive Jaccard against a query column — shared values make any
//     instance matcher score the pair regardless of names and types.
//
// The screen is a conservative heuristic, not a guarantee: it only drops
// tables with none of the three signals, which full schema-coverage
// scoring ranks at or near the bottom. A matcher can still assign such a
// table a nonzero score (e.g. from fuzzy name similarity alone), so in
// principle the bottom of a top-k could differ; on the test corpus the
// top-k is unchanged (TestUnionPrescreenPreservesTopK pins this).
//
// Reach: because String is type-compatible with everything, any candidate
// with a string column passes type coverage outright — the screen's teeth
// are in all-numeric/sensor-style tables with unrelated names and values,
// a common species in data lakes. Cost: type and token checks read cheap
// cached profile fields; valueEvidence — consulted only when both cheap
// signals fail — forces the candidate's distinct sets and MinHash
// signatures, roughly the same one-off cost `valentine index` pays per
// table, and still well below the full matcher run a pruned table skips.
func unionPrescreen(qp *valentine.TableProfile, cands []*valentine.TableProfile) []string {
	keep := make([]string, 0, len(cands))
	for _, cp := range cands {
		if unionTypeCoverage(qp, cp) || nameTokenEvidence(qp, cp) || valueEvidence(qp, cp) {
			keep = append(keep, cp.Name())
		}
	}
	return keep
}

// unionTypeCoverage reports whether every query column has a
// type-compatible candidate column.
func unionTypeCoverage(qp, cp *valentine.TableProfile) bool {
	for _, qc := range qp.Columns() {
		covered := false
		for _, cc := range cp.Columns() {
			if qc.Type().Compatible(cc.Type()) {
				covered = true
				break
			}
		}
		if !covered {
			return false
		}
	}
	return true
}

// valueEvidence reports whether any (query, candidate) column pair has a
// positive estimated Jaccard similarity, from the profiles' cached MinHash
// signatures. Profiles sharing the store's value dictionary first run the
// integer-set exact-overlap kernel as a prescreen: a pair with zero true
// overlap cannot estimate positive (two disjoint sets would need a 64-bit
// hash collision to agree on a signature slot), so the — strictly more
// expensive — signature computation is skipped for it entirely.
func valueEvidence(qp, cp *valentine.TableProfile) bool {
	for _, qc := range qp.Columns() {
		qset := qc.InternedDistinct()
		qsig := qc.Signature(0)
		for _, cc := range cp.Columns() {
			if qset != nil && qc.Dict() == cc.Dict() {
				if cset := cc.InternedDistinct(); cset != nil && intern.IntersectCount(qset, cset) == 0 {
					continue
				}
			}
			if valentine.EstimateJaccard(qsig, cc.Signature(0)) > 0 {
				return true
			}
		}
	}
	return false
}

// nameTokenEvidence reports whether any candidate column shares a name
// token with any query column (token sets come from the profile cache).
func nameTokenEvidence(qp, cp *valentine.TableProfile) bool {
	for _, qc := range qp.Columns() {
		qset := qc.NameTokenSet()
		if len(qset) == 0 {
			continue
		}
		for _, cc := range cp.Columns() {
			for tok := range cc.NameTokenSet() {
				if _, ok := qset[tok]; ok {
					return true
				}
			}
		}
	}
	return false
}

// discoveryScore aliases planner.DiscoveryScore (where the aggregation
// moved so the cascade and this CLI share one definition); kept for the
// tests that pin its semantics.
func discoveryScore(matches []valentine.Match, mode string, query *table.Table) (float64, valentine.Match) {
	return planner.DiscoveryScore(matches, mode, query)
}

package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"valentine"
	"valentine/internal/discovery"
	"valentine/internal/table"
)

// cmdDiscover ranks the CSV tables in a directory by their joinability or
// unionability with a query table — Valentine as a dataset-discovery
// component, end to end.
//
// Since the discovery index landed, join-mode discover is a two-phase
// pipeline: an in-memory column index prunes the corpus to candidate
// tables (columns colliding with the query in an LSH band), then only
// those candidates are re-scored with the requested matcher. Tables the
// index rules out entirely are appended with score 0, so the output still
// covers the whole corpus. Union mode re-scores every table: unionability
// is about schema coverage, and a schema-identical table with disjoint
// values (last year's export) would never collide in a value-overlap
// sketch, so pruning by it would be the wrong signal.
func cmdDiscover(args []string) error {
	fs := flag.NewFlagSet("discover", flag.ExitOnError)
	query := fs.String("query", "", "query CSV (required)")
	dir := fs.String("dir", ".", "directory of candidate CSVs")
	mode := fs.String("mode", "join", "join|union")
	method := fs.String("method", valentine.MethodComaInstance, "matching method for re-scoring candidates")
	top := fs.Int("top", 10, "candidates to print")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *query == "" {
		return fmt.Errorf("discover: -query is required")
	}
	dmode, err := discovery.ParseMode(*mode)
	if err != nil {
		return fmt.Errorf("discover: mode %q is not join|union", *mode)
	}
	q, err := valentine.ReadCSVFile(*query)
	if err != nil {
		return err
	}
	m, err := valentine.NewMatcher(*method, nil)
	if err != nil {
		return err
	}

	queryAbs, err := filepath.Abs(*query)
	if err != nil {
		return err
	}
	tables, files, err := readCSVDir(*dir, queryAbs)
	if err != nil {
		return err
	}
	if len(tables) == 0 {
		return fmt.Errorf("discover: no candidate CSVs in %s", *dir)
	}

	// Phase 1 (join mode): index the corpus once and let the LSH shards
	// nominate candidate tables. Union mode nominates everything.
	byName := make(map[string]*table.Table, len(tables))
	for _, t := range tables {
		byName[t.Name] = t
	}
	var nominate []string
	if dmode == valentine.DiscoverJoin {
		ix := valentine.NewDiscoveryIndex(valentine.DiscoveryOptions{})
		for _, t := range tables {
			if err := ix.Add(t); err != nil {
				fmt.Fprintf(os.Stderr, "discover: skipping %s: %v\n", files[t.Name], err)
				delete(byName, t.Name)
			}
		}
		// The index skips self-matches by table name; if a corpus file
		// shares the query file's basename they collide, so search under
		// a name no CSV-derived table can have.
		searchQ := q
		if _, clash := byName[q.Name]; clash {
			searchQ = q.Clone()
			searchQ.Name = q.Name + "\x00query"
		}
		nominated, err := ix.Search(searchQ, dmode, 0)
		if err != nil {
			return err
		}
		for _, r := range nominated {
			nominate = append(nominate, r.Table)
		}
	} else {
		for _, t := range tables {
			nominate = append(nominate, t.Name)
		}
	}

	// Phase 2: exact re-scoring of nominated candidates.
	type candidate struct {
		name  string
		score float64
		best  valentine.Match
	}
	var ranked []candidate
	scored := make(map[string]bool, len(nominate))
	for _, name := range nominate {
		t := byName[name]
		if t == nil {
			continue
		}
		scored[name] = true
		matches, err := m.Match(q, t)
		if err != nil {
			fmt.Fprintf(os.Stderr, "discover: skipping %s: %v\n", files[name], err)
			continue
		}
		score, best := discoveryScore(matches, *mode, q)
		ranked = append(ranked, candidate{name: files[name], score: score, best: best})
	}
	pruned := 0
	for name := range byName {
		if !scored[name] {
			ranked = append(ranked, candidate{name: files[name]})
			pruned++
		}
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].score != ranked[j].score {
			return ranked[i].score > ranked[j].score
		}
		return ranked[i].name < ranked[j].name
	})
	fmt.Printf("%s-ability of %d candidates with %q (%s; %d pruned by index):\n",
		*mode, len(ranked), q.Name, *method, pruned)
	if *top > len(ranked) {
		*top = len(ranked)
	}
	for i, c := range ranked[:*top] {
		fmt.Printf("%2d. %-30s %.3f", i+1, c.name, c.score)
		if c.best.SourceColumn != "" {
			fmt.Printf("  via %s ~ %s", c.best.SourceColumn, c.best.TargetColumn)
		}
		fmt.Println()
	}
	return nil
}

// discoveryScore converts a ranked match list into one candidate score:
// joinability is the best single correspondence (one good join column
// suffices); unionability is the mean of each query column's best match
// (union needs every column covered).
func discoveryScore(matches []valentine.Match, mode string, query *table.Table) (float64, valentine.Match) {
	if len(matches) == 0 {
		return 0, valentine.Match{}
	}
	if mode == "join" {
		return matches[0].Score, matches[0]
	}
	bestPer := make(map[string]float64, query.NumColumns())
	for _, m := range matches {
		if m.Score > bestPer[m.SourceColumn] {
			bestPer[m.SourceColumn] = m.Score
		}
	}
	sum := 0.0
	for _, c := range query.ColumnNames() {
		sum += bestPer[c]
	}
	return sum / float64(query.NumColumns()), matches[0]
}

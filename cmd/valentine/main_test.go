package main

import (
	"os"
	"path/filepath"
	"testing"

	"valentine"
	"valentine/internal/table"
)

func TestParamFlags(t *testing.T) {
	var pf paramFlags
	if err := pf.Set("threshold=0.5"); err != nil {
		t.Fatal(err)
	}
	if err := pf.Set("strategy=instance"); err != nil {
		t.Fatal(err)
	}
	if pf.p.Float("threshold", 0) != 0.5 {
		t.Errorf("numeric param = %v", pf.p["threshold"])
	}
	if pf.p.String("strategy", "") != "instance" {
		t.Errorf("string param = %v", pf.p["strategy"])
	}
	if err := pf.Set("noequalsign"); err == nil {
		t.Error("malformed param should fail")
	}
	if pf.String() != "" {
		t.Error("flag String should be empty")
	}
}

func TestReadTruth(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "gt.csv")
	content := "source_column,target_column\nclient,customer\ncity,town\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	gt, err := readTruth(path)
	if err != nil {
		t.Fatal(err)
	}
	if gt.Size() != 2 || !gt.Contains("client", "customer") {
		t.Fatalf("gt = %v", gt.Pairs())
	}
	// without header row every line is a pair
	noHeader := filepath.Join(dir, "nh.csv")
	if err := os.WriteFile(noHeader, []byte("a,b\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	gt2, err := readTruth(noHeader)
	if err != nil || gt2.Size() != 1 {
		t.Fatalf("no-header gt = %v, %v", gt2, err)
	}
	// malformed row
	bad := filepath.Join(dir, "bad.csv")
	if err := os.WriteFile(bad, []byte("only-one-column\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readTruth(bad); err == nil {
		t.Error("single-column row should fail")
	}
	if _, err := readTruth(filepath.Join(dir, "missing.csv")); err == nil {
		t.Error("missing file should fail")
	}
}

func TestDiscoveryScore(t *testing.T) {
	q := table.New("q")
	q.AddColumn("a", []string{"1"})
	q.AddColumn("b", []string{"2"})
	ms := []valentine.Match{
		{SourceColumn: "a", TargetColumn: "x", Score: 0.9},
		{SourceColumn: "a", TargetColumn: "y", Score: 0.3},
		{SourceColumn: "b", TargetColumn: "y", Score: 0.5},
	}
	join, best := discoveryScore(ms, "join", q)
	if join != 0.9 || best.TargetColumn != "x" {
		t.Fatalf("join score = %v via %v", join, best)
	}
	union, _ := discoveryScore(ms, "union", q)
	if union != 0.7 { // mean of best-per-column: (0.9 + 0.5)/2
		t.Fatalf("union score = %v", union)
	}
	empty, _ := discoveryScore(nil, "join", q)
	if empty != 0 {
		t.Fatalf("empty score = %v", empty)
	}
}

package main

import (
	"fmt"
	"sort"
	"testing"

	"valentine"
)

// unionCorpus builds a discovery corpus around a query with string and date
// columns: two genuinely union-related tables (same schema family), one
// schema-identical table with disjoint values, and numeric-only junk tables
// that share no name token with the query — the kind the prescreen exists
// to prune.
func unionCorpus(t *testing.T) (q *valentine.Table, corpus []*valentine.Table) {
	t.Helper()
	src := valentine.TPCDI(valentine.DatasetOptions{Rows: 50, Seed: 11})
	pair, err := valentine.NewFabricator(13).Unionable(src, 0.5, valentine.Variant{})
	if err != nil {
		t.Fatal(err)
	}
	q = pair.Source
	q.Name = "query"
	// A date column makes type coverage discriminative: only candidates
	// with a date or string column can cover it.
	dates := make([]string, q.NumRows())
	for i := range dates {
		dates[i] = fmt.Sprintf("2021-%02d-%02d", i%12+1, i%28+1)
	}
	q.AddColumn("signup_date", dates)
	pair.Target.Name = "related_a"
	corpus = append(corpus, pair.Target)

	pair2, err := valentine.NewFabricator(17).Unionable(src, 0.4, valentine.Variant{NoisySchema: true})
	if err != nil {
		t.Fatal(err)
	}
	pair2.Target.Name = "related_b"
	corpus = append(corpus, pair2.Target)

	disjoint := q.Clone()
	disjoint.Name = "archive"
	for i := range disjoint.Columns {
		for j := range disjoint.Columns[i].Values {
			disjoint.Columns[i].Values[j] = "zzz"
		}
	}
	disjoint.RetypeColumns()
	corpus = append(corpus, disjoint)

	for n, name := range []string{"junk_m", "junk_n"} {
		junk := valentine.Table{Name: name}
		junk.AddColumn("q1", seq(40, n+1))
		junk.AddColumn("q2", seq(40, n+7))
		corpus = append(corpus, &junk)
	}
	return q, corpus
}

// seq yields numeric values with a fractional marker no generated query
// value carries, so junk columns stay numeric without sharing any distinct
// value with the query (the prescreen's value-evidence signal must stay
// silent for them).
func seq(n, mul int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%d.125", 700000+i*mul)
	}
	return out
}

// rankUnion scores the named tables with the matcher and returns the full
// ranking (unscored tables at 0), mirroring cmdDiscover's union phase 2.
func rankUnion(t *testing.T, m valentine.Matcher, store *valentine.ProfileStore,
	q *valentine.Table, corpus []*valentine.Table, score map[string]bool) []string {
	t.Helper()
	type cand struct {
		name string
		s    float64
	}
	ranked := make([]cand, 0, len(corpus))
	for _, tab := range corpus {
		c := cand{name: tab.Name}
		if score[tab.Name] {
			ms, err := valentine.MatchWithProfiles(m, store.Of(q), store.Of(tab))
			if err != nil {
				t.Fatal(err)
			}
			c.s, _ = discoveryScore(ms, "union", q)
		}
		ranked = append(ranked, c)
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].s != ranked[j].s {
			return ranked[i].s > ranked[j].s
		}
		return ranked[i].name < ranked[j].name
	})
	names := make([]string, len(ranked))
	for i, c := range ranked {
		names[i] = c.name
	}
	return names
}

// TestUnionPrescreenPreservesTopK: pruning via the profile-based
// type/name-token prescreen must not change the top-k union ranking
// relative to scoring every table, and it must actually prune the junk.
func TestUnionPrescreenPreservesTopK(t *testing.T) {
	q, corpus := unionCorpus(t)
	store := valentine.NewProfileStore()
	store.Warm(append(append([]*valentine.Table{}, corpus...), q)...)
	m, err := valentine.NewMatcher(valentine.MethodComaInstance, nil)
	if err != nil {
		t.Fatal(err)
	}

	all := make(map[string]bool, len(corpus))
	for _, tab := range corpus {
		all[tab.Name] = true
	}
	cands := make([]*valentine.TableProfile, 0, len(corpus))
	for _, tab := range corpus {
		cands = append(cands, store.Of(tab))
	}
	kept := unionPrescreen(store.Of(q), cands)
	keptSet := make(map[string]bool, len(kept))
	for _, name := range kept {
		keptSet[name] = true
	}
	if len(kept) >= len(corpus) {
		t.Fatalf("prescreen pruned nothing (%d of %d kept)", len(kept), len(corpus))
	}
	for _, name := range []string{"related_a", "related_b", "archive"} {
		if !keptSet[name] {
			t.Errorf("prescreen wrongly pruned %s", name)
		}
	}

	full := rankUnion(t, m, store, q, corpus, all)
	pruned := rankUnion(t, m, store, q, corpus, keptSet)
	const k = 3
	for i := 0; i < k; i++ {
		if full[i] != pruned[i] {
			t.Fatalf("top-%d changed: full %v vs prescreened %v", k, full[:k], pruned[:k])
		}
	}
}

// TestUnionPrescreenSignals pins the two keep-signals down at the level of
// individual candidate shapes.
func TestUnionPrescreenSignals(t *testing.T) {
	q := valentine.Table{Name: "q"}
	q.AddColumn("signup_date", []string{"2020-01-02", "2021-03-04"})
	q.AddColumn("city", []string{"delft", "lyon"})

	numbersOnly := valentine.Table{Name: "numbers"}
	numbersOnly.AddColumn("a", []string{"1", "2"})
	numbersOnly.AddColumn("b", []string{"3.5", "4.5"})

	namedNumbers := valentine.Table{Name: "named"}
	namedNumbers.AddColumn("city_code", []string{"1", "2"})

	covering := valentine.Table{Name: "covering"}
	covering.AddColumn("x", []string{"2019-05-06", "2018-07-08"})
	covering.AddColumn("y", []string{"oslo", "rome"})

	store := valentine.NewProfileStore()
	got := unionPrescreen(store.Of(&q), []*valentine.TableProfile{
		store.Of(&numbersOnly), store.Of(&namedNumbers), store.Of(&covering),
	})
	want := map[string]bool{"named": true, "covering": true}
	if len(got) != len(want) {
		t.Fatalf("kept %v", got)
	}
	for _, name := range got {
		if !want[name] {
			t.Errorf("kept %s unexpectedly", name)
		}
	}
}

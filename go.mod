module valentine

go 1.24

package valentine_test

import (
	"fmt"

	"valentine"
)

// ExampleNewMatcher demonstrates the minimal matching workflow: fabricate a
// problem and rank correspondences.
func ExampleNewMatcher() {
	source := valentine.TPCDI(valentine.DatasetOptions{Rows: 80, Seed: 1})
	pair, err := valentine.NewFabricator(1).Joinable(source, 0.5, 1.0, false)
	if err != nil {
		panic(err)
	}
	m, err := valentine.NewMatcher(valentine.MethodComaSchema, nil)
	if err != nil {
		panic(err)
	}
	matches, err := m.Match(pair.Source, pair.Target)
	if err != nil {
		panic(err)
	}
	recall, err := valentine.RecallAtGT(matches, pair.Truth)
	if err != nil {
		panic(err)
	}
	fmt.Printf("recall@GT = %.1f\n", recall)
	// Output: recall@GT = 1.0
}

// ExampleMethods lists the implemented matching methods in the paper's
// reporting order.
func ExampleMethods() {
	for _, m := range valentine.Methods() {
		fmt.Println(m)
	}
	// Output:
	// cupid
	// similarity-flooding
	// coma-schema
	// coma-instance
	// distribution-based
	// semprop
	// embdi
	// jaccard-levenshtein
}

// ExampleFabricator_Unionable shows the fabricator emitting ground truth
// that tracks schema noise.
func ExampleFabricator_Unionable() {
	source := valentine.ChEMBL(valentine.DatasetOptions{Rows: 40, Seed: 2})
	pair, err := valentine.NewFabricator(2).Unionable(source, 1.0, valentine.Variant{NoisySchema: true})
	if err != nil {
		panic(err)
	}
	fmt.Println(pair.Scenario, pair.Truth.Size())
	// Output: unionable 15
}

package valentine

// The public face of the unified concurrent execution engine
// (internal/engine): every scoring consumer in the suite — the nine
// matchers, the ensemble, the experiment runner, the discovery index —
// executes through one candidate-generation → prune → score → rank pipeline
// with context propagation (deadlines and cancellation honored mid-scoring),
// a bounded worker pool, and per-stage instrumentation. Scores are
// bit-identical to sequential execution at every parallelism level.

import (
	"context"

	"valentine/internal/core"
	"valentine/internal/engine"
)

// EngineOptions configure the execution engine: Parallelism bounds the
// worker pool (0 = GOMAXPROCS), Deadline is the wall-clock budget (0 =
// none). The zero value selects the defaults.
type EngineOptions = engine.Options

// Stats is the engine's per-stage instrumentation collector: candidates
// generated, pruned and scored, plus accumulated wall time per pipeline
// stage. Attach one with WithEngineStats and read it with Snapshot.
type Stats = engine.Stats

// StatsSnapshot is a point-in-time copy of a Stats collector.
type StatsSnapshot = engine.Snapshot

// ContextMatcher is implemented by every built-in matcher and the ensemble:
// one context-aware scoring path honoring deadlines, cancellation, engine
// options and stats from ctx.
type ContextMatcher = core.ContextMatcher

// WithEngineOptions returns a context carrying opts; every engine-routed
// call below it (MatchWithContext, DiscoveryIndex.SearchContext, ensemble
// members, ...) picks its parallelism up from the nearest options.
func WithEngineOptions(ctx context.Context, opts EngineOptions) context.Context {
	return engine.WithOptions(ctx, opts)
}

// WithEngineStats attaches a fresh Stats collector to the context; every
// engine-routed call below it records pipeline counters and stage timings
// into the returned collector.
func WithEngineStats(ctx context.Context) (context.Context, *Stats) {
	return engine.WithStats(ctx)
}

// MatchWithContext runs m over the pair through the engine: opts.Deadline
// (and ctx's own deadline or cancellation) aborts scoring mid-pipeline,
// opts.Parallelism fans independent scoring units out on a bounded pool,
// and the ranked result is bit-identical to m.Match at any parallelism.
func MatchWithContext(ctx context.Context, m Matcher, source, target *Table, opts EngineOptions) ([]Match, error) {
	ctx, cancel := opts.Start(ctx)
	defer cancel()
	return core.MatchWithContext(ctx, m, nil, source, target)
}

// MatchProfilesWithContext is MatchWithContext over already-profiled tables
// (see ProfileStore): engine options and stats are taken from ctx, so wrap
// it with WithEngineOptions / WithEngineStats as needed.
func MatchProfilesWithContext(ctx context.Context, m Matcher, source, target *TableProfile) ([]Match, error) {
	return core.MatchProfilesWithContext(ctx, m, source, target)
}

package valentine

// Extensions beyond the paper's seven methods, implementing its "lessons
// learned" (§IX): matcher composition, human-in-the-loop feedback, an
// approximate LSH matcher, and richer rank metrics.

import (
	"io"

	"valentine/internal/core"
	"valentine/internal/discovery"
	"valentine/internal/experiment"
	"valentine/internal/fabrication"
	"valentine/internal/feedback"
	"valentine/internal/matchers/ensemble"
	"valentine/internal/metrics"
	"valentine/internal/profile"
	"valentine/internal/server"
	"valentine/internal/table"
)

// MethodLSH is the approximate value-overlap matcher (MinHash LSH banding)
// suggested by the paper's scaling lesson. Registered alongside — but
// reported separately from — the paper's methods.
const MethodLSH = experiment.MethodLSH

// DiscoveryIndex is the live catalog for served dataset discovery: a
// segmented, copy-on-write column index (MinHash signatures + lightweight
// profiles sharded across LSH band buckets) answering top-k joinability and
// unionability queries by probing buckets instead of matching pairwise
// against the whole corpus. It mutates while it serves: searches are
// lock-free (they pin an atomically swapped epoch snapshot), while
// Add/Upsert/Remove/Apply publish new epochs — tombstoning removed tables
// until background compaction reclaims them — without ever blocking a
// search.
type DiscoveryIndex = discovery.Index

// DiscoveryOptions configures a DiscoveryIndex's LSH geometry, scoring and
// segment policy.
type DiscoveryOptions = discovery.Options

// DiscoveryResult is one ranked table from an index search.
type DiscoveryResult = discovery.Result

// DiscoveryMode selects the relatedness notion a search ranks by.
type DiscoveryMode = discovery.Mode

// DiscoveryOp is one catalog mutation for DiscoveryIndex.Apply: batched
// upserts/removes share one copy-on-write rebuild and one epoch publish.
type DiscoveryOp = discovery.Op

// DiscoveryStats is a point-in-time summary of the catalog's internals
// (epoch, segments, tombstones, live corpus size).
type DiscoveryStats = discovery.Stats

// Discovery search modes.
const (
	DiscoverJoin  = discovery.ModeJoin
	DiscoverUnion = discovery.ModeUnion
)

// NewDiscoveryIndex returns an empty discovery index (zero-value options
// select the suite-wide LSH defaults: 128-slot signatures, 32 bands, 16
// tables per memtable segment).
func NewDiscoveryIndex(opts DiscoveryOptions) *DiscoveryIndex { return discovery.New(opts) }

// LoadDiscoveryIndex reads an index previously written with Save.
func LoadDiscoveryIndex(r io.Reader) (*DiscoveryIndex, error) { return discovery.Load(r) }

// LoadDiscoveryIndexFile reads an index from a single file written with
// SaveFile (or the `valentine index` command), or from a snapshot directory
// written with SaveSnapshot (or `valentine serve -snapshot`).
func LoadDiscoveryIndexFile(path string) (*DiscoveryIndex, error) { return discovery.LoadFile(path) }

// LoadDiscoverySnapshot reads a snapshot directory written with
// DiscoveryIndex.SaveSnapshot: segment layout, tombstones and epoch are
// restored exactly.
func LoadDiscoverySnapshot(dir string) (*DiscoveryIndex, error) { return discovery.LoadSnapshot(dir) }

// ServeOptions configures a catalog Server (see NewServer). The zero value
// of every field selects a sensible serving default.
type ServeOptions = server.Config

// Server is the HTTP serving layer over a live catalog: /v1/search,
// /v1/tables (upsert/delete/list/profiles), /v1/match and /v1/stats, with
// per-request deadlines, micro-batched ingest and periodic snapshots.
// Mount Handler() on any http.Server and Close() on shutdown.
type Server = server.Server

// NewServer returns an HTTP serving layer over opts' catalog (a fresh empty
// catalog when opts.Index is nil). It fails when a configured write-ahead
// log cannot be opened or belongs to a different catalog.
func NewServer(opts ServeOptions) (*Server, error) { return server.New(opts) }

// ProfileStore is the corpus-level cache of the shared lazy column-profile
// layer: every piece of derived per-column data (distinct sets, sorted
// distinct values, name tokens, numeric vectors, statistics, MinHash
// signatures) is computed at most once per column and reused by every
// profile-aware matcher, the ensemble, the experiment runner and the
// discovery index. Safe for concurrent use.
type ProfileStore = profile.Store

// TableProfile bundles the lazily-computed column profiles of one table.
type TableProfile = profile.TableProfile

// ColumnProfileData is the lazy per-column profile.
type ColumnProfileData = profile.Profile

// NewProfileStore returns an empty profile store. Call Warm with a corpus
// to precompute every profile in parallel before serving queries.
func NewProfileStore() *ProfileStore { return profile.NewStore() }

// ProfileTable profiles a table outside any store (one-shot use); derived
// data is computed lazily and shared between all consumers of the returned
// profile.
func ProfileTable(t *Table) *TableProfile { return profile.New(t) }

// MatchWithProfiles runs a matcher over profiled tables: profile-aware
// matchers (all nine built-in methods and the ensemble) reuse the cached
// derived data; any other Matcher implementation falls back to plain Match.
// Scores are identical to m.Match on the profiles' tables.
func MatchWithProfiles(m Matcher, source, target *TableProfile) ([]Match, error) {
	return core.MatchWith(m, source, target)
}

// EstimateJaccard estimates the Jaccard similarity of two columns' value
// sets from their MinHash signatures (see TableProfile column Signature);
// signatures must share one length.
func EstimateJaccard(a, b []uint64) float64 { return profile.EstimateJaccard(a, b) }

// FeedbackSession accumulates reviewer verdicts and reranks match lists
// (paper lesson: "Humans-in-the-loop").
type FeedbackSession = feedback.Session

// NewFeedbackSession returns an empty feedback session.
func NewFeedbackSession() *FeedbackSession { return feedback.NewSession() }

// SimulateFeedback answers review questions from the ground truth and
// returns the Recall@GT trajectory per answered question.
func SimulateFeedback(matches []Match, gt *GroundTruth, budget int) ([]float64, error) {
	return feedback.Simulate(matches, gt, budget)
}

// EnsembleFusion selects the ensemble combination rule.
type EnsembleFusion = ensemble.Fusion

// Ensemble fusion rules.
const (
	FusionScore = ensemble.FusionScore
	FusionRRF   = ensemble.FusionRRF
)

// NewEnsemble composes registered methods into one matcher (paper lesson:
// "One size does not fit all" — compose, COMA-style). Params: "fusion"
// ("score"|"rrf"), "rrf_k".
func NewEnsemble(methods []string, p Params) (Matcher, error) {
	quick := make(map[string]core.Params)
	for m, g := range experiment.QuickGrids() {
		quick[m] = g[0]
	}
	// Extension methods configured with defaults.
	quick[MethodLSH] = nil
	return ensemble.FromRegistry(experiment.NewRegistry(), quick, methods, p)
}

// PrecisionAtK computes precision among the top-k ranked matches.
func PrecisionAtK(matches []Match, gt *GroundTruth, k int) (float64, error) {
	return metrics.PrecisionAtK(matches, gt, k)
}

// RecallAtK computes recall among the top-k ranked matches.
func RecallAtK(matches []Match, gt *GroundTruth, k int) (float64, error) {
	return metrics.RecallAtK(matches, gt, k)
}

// NDCGAtK computes normalized DCG at k with binary relevance.
func NDCGAtK(matches []Match, gt *GroundTruth, k int) (float64, error) {
	return metrics.NDCGAtK(matches, gt, k)
}

// AveragePrecision computes AP over the full ranking.
func AveragePrecision(matches []Match, gt *GroundTruth) (float64, error) {
	return metrics.AveragePrecision(matches, gt)
}

// RecallCurve returns Recall@k for k = 1..maxK.
func RecallCurve(matches []Match, gt *GroundTruth, maxK int) ([]float64, error) {
	return metrics.RecallCurve(matches, gt, maxK)
}

// SavePair writes a table pair with ground truth to a directory (the
// publishable artifact layout of the original repository).
func SavePair(dir string, pair TablePair) error { return fabrication.SavePair(dir, pair) }

// LoadPair reads a pair saved by SavePair.
func LoadPair(dir string) (TablePair, error) { return fabrication.LoadPair(dir) }

// JoinTables inner-joins two tables on a matched column pair — what a
// discovery pipeline executes once a matcher proposes a join.
func JoinTables(left, right *Table, leftCol, rightCol string) (*Table, error) {
	return table.Join(left, right, leftCol, rightCol)
}

// UnionTables unions b into a's schema through the column mapping
// (deduplicating exact row duplicates).
func UnionTables(a, b *Table, mapping map[string]string) (*Table, error) {
	return table.Union(a, b, mapping)
}

// WriteResultsCSV exports experiment results in the detailed per-run format
// the original repository publishes.
func WriteResultsCSV(w io.Writer, rs []ExperimentResult) error {
	return experiment.WriteResultsCSV(w, rs)
}

// ReadResultsCSV parses results written by WriteResultsCSV.
func ReadResultsCSV(r io.Reader) ([]ExperimentResult, error) {
	return experiment.ReadResultsCSV(r)
}

// Discovery: use Valentine as the schema-matching component of a dataset
// discovery pipeline — the use case the paper motivates. A small "data
// lake" of tables is derived from three domains; given a query table, each
// candidate lake table is scored for joinability by the best-ranked column
// correspondence, producing a ranked list of joinable datasets.
//
//	go run ./examples/discovery
package main

import (
	"fmt"
	"log"
	"sort"

	"valentine"
)

func main() {
	opts := valentine.DatasetOptions{Rows: 150, Seed: 3}

	// Build the lake: vertical fragments of three different source tables.
	fab := valentine.NewFabricator(11)
	type lakeEntry struct {
		name     string
		table    *valentine.Table
		joinable bool // whether it truly shares columns with the query
	}
	var lake []lakeEntry

	// Fragments of the prospect table: these share join columns with the
	// query table below.
	prospect := valentine.TPCDI(opts)
	j1, err := fab.Joinable(prospect, 0.5, 1.0, false)
	if err != nil {
		log.Fatal(err)
	}
	query := j1.Source
	query.Name = "query_prospects"
	j1.Target.Name = "crm_extract"
	lake = append(lake, lakeEntry{"crm_extract", j1.Target, true})

	j2, err := fab.SemanticallyJoinable(prospect, 0.3, 1.0, true)
	if err != nil {
		log.Fatal(err)
	}
	j2.Target.Name = "marketing_dump"
	lake = append(lake, lakeEntry{"marketing_dump", j2.Target, true})

	// Unrelated tables from other domains.
	lake = append(lake,
		lakeEntry{"civic_programs", valentine.OpenData(opts), false},
		lakeEntry{"assay_results", valentine.ChEMBL(opts), false},
	)

	// Rank lake tables by joinability with the query table: the score of a
	// candidate is its best column-correspondence score.
	m, err := valentine.NewMatcher(valentine.MethodComaInstance, nil)
	if err != nil {
		log.Fatal(err)
	}
	type ranked struct {
		name  string
		score float64
		top   valentine.Match
		truth bool
	}
	var results []ranked
	for _, entry := range lake {
		matches, err := m.Match(query, entry.table)
		if err != nil {
			log.Fatal(err)
		}
		best := valentine.Match{}
		if len(matches) > 0 {
			best = matches[0]
		}
		results = append(results, ranked{entry.name, best.Score, best, entry.joinable})
	}
	sort.Slice(results, func(i, j int) bool { return results[i].score > results[j].score })

	fmt.Printf("joinable-table search for %q over %d lake tables (%s):\n\n",
		query.Name, len(lake), m.Name())
	for rank, r := range results {
		marker := " "
		if r.truth {
			marker = "✓"
		}
		fmt.Printf("%d. %s %-18s score %.3f  best join: %s ⋈ %s\n",
			rank+1, marker, r.name, r.score, r.top.SourceColumn, r.top.TargetColumn)
	}
	fmt.Println("\n✓ marks tables fabricated from the query's source (truly joinable).")
}

// Feedbackloop: the paper argues schema matching should be treated as a
// search problem with a human in the loop — ranked candidates reviewed,
// confirmed or rejected, and the ranking revised. This example runs a weak
// matcher on a hard fabricated pair and shows Recall@GT improving as an
// oracle (the ground truth) answers the suite's suggested questions.
//
//	go run ./examples/feedbackloop
package main

import (
	"fmt"
	"log"
	"strings"

	"valentine"
)

func main() {
	source := valentine.OpenData(valentine.DatasetOptions{Rows: 120, Seed: 17})
	fab := valentine.NewFabricator(23)
	pair, err := fab.ViewUnionable(source, 0.5,
		valentine.Variant{NoisySchema: true, NoisyInstances: true})
	if err != nil {
		log.Fatal(err)
	}

	m, err := valentine.NewMatcher(valentine.MethodSimFlood, nil)
	if err != nil {
		log.Fatal(err)
	}
	matches, err := m.Match(pair.Source, pair.Target)
	if err != nil {
		log.Fatal(err)
	}
	base, err := valentine.RecallAtGT(matches, pair.Truth)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("matcher %s on %s\n", m.Name(), pair.Name)
	fmt.Printf("baseline recall@GT = %.3f over %d ground-truth pairs\n\n",
		base, pair.Truth.Size())

	trajectory, err := valentine.SimulateFeedback(matches, pair.Truth, 25)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("recall@GT after each answered review question:")
	for i, r := range trajectory {
		bar := strings.Repeat("█", int(r*40))
		fmt.Printf("%3d answers %.3f %s\n", i, r, bar)
	}
	fmt.Println("\nEach question is chosen by expected ranking impact (contested")
	fmt.Println("candidates first); verdicts rerank candidates without retraining.")
}

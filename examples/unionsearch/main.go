// Unionsearch: table-union search over open-data-style shards (the
// Nargesian et al. scenario the paper's view-unionable case models).
// Shards of a civic dataset are fabricated with differing schema
// conventions; schema-based and instance-based matchers are compared on
// ranking the shards' columns against a reference table.
//
//	go run ./examples/unionsearch
package main

import (
	"fmt"
	"log"

	"valentine"
)

func main() {
	source := valentine.OpenData(valentine.DatasetOptions{Rows: 160, Seed: 9})
	fab := valentine.NewFabricator(21)

	// Three shards with increasing difficulty.
	type shard struct {
		name string
		pair valentine.TablePair
	}
	var shards []shard
	mk := func(name string, v valentine.Variant) {
		p, err := fab.ViewUnionable(source, 0.5, v)
		if err != nil {
			log.Fatal(err)
		}
		p.Target.Name = name
		shards = append(shards, shard{name, p})
	}
	mk("shard_verbatim", valentine.Variant{})
	mk("shard_renamed", valentine.Variant{NoisySchema: true})
	mk("shard_renamed_noisy", valentine.Variant{NoisySchema: true, NoisyInstances: true})

	methods := []string{
		valentine.MethodComaSchema,   // schema-based
		valentine.MethodComaInstance, // instance-augmented
		valentine.MethodJaccardLev,   // instance-only baseline
	}

	fmt.Println("union search: recall@GT of shard-column rankings")
	fmt.Printf("%-24s", "shard")
	for _, m := range methods {
		fmt.Printf(" %-20s", m)
	}
	fmt.Println()
	for _, s := range shards {
		fmt.Printf("%-24s", s.name)
		for _, method := range methods {
			m, err := valentine.NewMatcher(method, nil)
			if err != nil {
				log.Fatal(err)
			}
			matches, err := m.Match(s.pair.Source, s.pair.Target)
			if err != nil {
				log.Fatal(err)
			}
			recall, err := valentine.RecallAtGT(matches, s.pair.Truth)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %-20.3f", recall)
		}
		fmt.Println()
	}
	fmt.Println("\nExpected shape (paper §VII): schema methods ace verbatim shards and")
	fmt.Println("degrade once columns are renamed; the view-unionable zero-row-overlap")
	fmt.Println("setting is the hardest case for instance-based methods.")
}

// Indexsearch: serve dataset-discovery queries from a persistent column
// index instead of brute-force matching. A data lake of fabricated tables
// is ingested into a DiscoveryIndex once — per-column MinHash signatures
// and profiles, sharded across LSH band buckets — and then top-k
// joinability and unionability queries probe the buckets for candidates,
// never touching unrelated tables. The index round-trips through a file,
// the deployment shape: index the lake offline, serve searches online.
//
//	go run ./examples/indexsearch
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"valentine"
)

func main() {
	opts := valentine.DatasetOptions{Rows: 150, Seed: 3}
	fab := valentine.NewFabricator(11)

	// Build the lake: fragments of a prospect table (truly related to the
	// query) drowned in unrelated tables from other domains.
	prospect := valentine.TPCDI(opts)
	j1, err := fab.Joinable(prospect, 0.5, 1.0, false)
	if err != nil {
		log.Fatal(err)
	}
	query := j1.Source
	query.Name = "query_prospects"
	j1.Target.Name = "crm_extract"

	u1, err := fab.Unionable(prospect, 0.6, valentine.Variant{})
	if err != nil {
		log.Fatal(err)
	}
	u1.Target.Name = "prospects_archive"

	lake := []*valentine.Table{j1.Target, u1.Target}
	for i := 0; i < 6; i++ {
		o := valentine.DatasetOptions{Rows: 120, Seed: int64(20 + i)}
		civic := valentine.OpenData(o)
		civic.Name = fmt.Sprintf("civic_programs_%d", i)
		assay := valentine.ChEMBL(o)
		assay.Name = fmt.Sprintf("assay_results_%d", i)
		lake = append(lake, civic, assay)
	}

	// Ingest once. TokenBoost blends column-name token overlap into the
	// value-overlap score: low-cardinality categorical columns (state,
	// gender, ...) produce perfect value overlap across unrelated domains,
	// and the name signal breaks exactly those ties.
	ix := valentine.NewDiscoveryIndex(valentine.DiscoveryOptions{TokenBoost: 0.15})
	for _, t := range lake {
		if err := ix.Add(t); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("indexed %d tables, %d columns\n\n", ix.NumTables(), ix.NumColumns())

	// Join discovery keys on *discriminative* columns: categorical columns
	// (state, gender, ...) overlap perfectly across unrelated domains, so
	// project the query down to columns where most values are distinct —
	// the same cardinality signal the index stores in its column profiles.
	var keys []string
	for _, c := range query.Columns {
		if len(c.Values) > 0 && len(c.DistinctValues())*2 >= len(c.Values) {
			keys = append(keys, c.Name)
		}
	}
	joinQuery, err := query.Project(keys...)
	if err != nil {
		log.Fatal(err)
	}

	// Serve queries: join on the discriminative projection, union on the
	// full schema, top-3 each.
	for _, q := range []struct {
		mode  valentine.DiscoveryMode
		query *valentine.Table
	}{{valentine.DiscoverJoin, joinQuery}, {valentine.DiscoverUnion, query}} {
		results, err := ix.Search(q.query, q.mode, 3)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("top %s candidates for %q:\n", q.mode, query.Name)
		for i, r := range results {
			fmt.Printf("  %d. %-22s %.3f  via %s ~ %s (%d candidate pairs scored)\n",
				i+1, r.Table, r.Score, r.BestQuery, r.BestIndexed, r.Candidates)
		}
		fmt.Println()
	}

	// Persist and reload — the served fast path never re-reads the lake.
	dir, err := os.MkdirTemp("", "valentine-index")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "lake.idx")
	if err := ix.SaveFile(path); err != nil {
		log.Fatal(err)
	}
	loaded, err := valentine.LoadDiscoveryIndexFile(path)
	if err != nil {
		log.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		log.Fatal(err)
	}
	reres, err := loaded.Search(joinQuery, valentine.DiscoverJoin, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("round-trip through %d-byte index file: top join candidate %s (%.3f)\n",
		info.Size(), reres[0].Table, reres[0].Score)
}

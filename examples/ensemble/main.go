// Ensemble: the paper's headline lesson is "one size does not fit all" —
// no single matcher wins every scenario, and composing methods (as COMA
// does internally) is the recommended way forward. This example fabricates
// one pair per relatedness scenario and compares individual matchers
// against a schema+instance+embeddings ensemble.
//
//	go run ./examples/ensemble
package main

import (
	"fmt"
	"log"

	"valentine"
)

func main() {
	source := valentine.TPCDI(valentine.DatasetOptions{Rows: 150, Seed: 13})
	fab := valentine.NewFabricator(31)

	noisy := valentine.Variant{NoisySchema: true, NoisyInstances: true}
	pairs := map[string]valentine.TablePair{}
	var err error
	if pairs["unionable"], err = fab.Unionable(source, 0.5, noisy); err != nil {
		log.Fatal(err)
	}
	if pairs["view-unionable"], err = fab.ViewUnionable(source, 0.5, noisy); err != nil {
		log.Fatal(err)
	}
	if pairs["joinable"], err = fab.Joinable(source, 0.5, 1.0, true); err != nil {
		log.Fatal(err)
	}
	if pairs["semantically-joinable"], err = fab.SemanticallyJoinable(source, 0.5, 1.0, true); err != nil {
		log.Fatal(err)
	}

	members := []string{
		valentine.MethodComaSchema,
		valentine.MethodDistribution,
		valentine.MethodJaccardLev,
	}
	ens, err := valentine.NewEnsemble(members, valentine.Params{"fusion": "rrf"})
	if err != nil {
		log.Fatal(err)
	}

	contenders := make(map[string]valentine.Matcher)
	for _, name := range members {
		m, err := valentine.NewMatcher(name, nil)
		if err != nil {
			log.Fatal(err)
		}
		contenders[name] = m
	}
	contenders["ensemble(rrf)"] = ens

	order := append(append([]string{}, members...), "ensemble(rrf)")
	fmt.Println("recall@GT per scenario (noisy schema + noisy instances):")
	fmt.Printf("%-22s", "method")
	scenarios := []string{"unionable", "view-unionable", "joinable", "semantically-joinable"}
	for _, s := range scenarios {
		fmt.Printf(" %-22s", s)
	}
	fmt.Println()
	for _, name := range order {
		fmt.Printf("%-22s", name)
		for _, s := range scenarios {
			p := pairs[s]
			matches, err := contenders[name].Match(p.Source, p.Target)
			if err != nil {
				log.Fatal(err)
			}
			r, err := valentine.RecallAtGT(matches, p.Truth)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %-22.3f", r)
		}
		fmt.Println()
	}
	fmt.Println("\nThe ensemble should track the best member per scenario rather")
	fmt.Println("than any single method's weaknesses.")
}

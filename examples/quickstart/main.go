// Quickstart: fabricate a matching problem from a generated table, run two
// matchers through the public API, and compare their ranked output against
// the ground truth.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"valentine"
)

func main() {
	// A Prospect-like source table (the TPC-DI stand-in).
	source := valentine.TPCDI(valentine.DatasetOptions{Rows: 200, Seed: 7})
	fmt.Printf("source: %s\n", source)

	// Fabricate a unionable pair with 50%% row overlap and noisy schemata —
	// the target's column names are perturbed, the ground truth tracks the
	// renames.
	fab := valentine.NewFabricator(42)
	pair, err := fab.Unionable(source, 0.5, valentine.Variant{NoisySchema: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fabricated %q with %d ground-truth correspondences\n\n", pair.Name, pair.Truth.Size())

	for _, method := range []string{valentine.MethodComaSchema, valentine.MethodJaccardLev} {
		m, err := valentine.NewMatcher(method, nil)
		if err != nil {
			log.Fatal(err)
		}
		matches, err := m.Match(pair.Source, pair.Target)
		if err != nil {
			log.Fatal(err)
		}
		recall, err := valentine.RecallAtGT(matches, pair.Truth)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: recall@GT = %.3f; top 5 of %d ranked matches:\n",
			method, recall, len(matches))
		for i, match := range matches {
			if i == 5 {
				break
			}
			correct := " "
			if pair.Truth.Contains(match.SourceColumn, match.TargetColumn) {
				correct = "✓"
			}
			fmt.Printf("  %s %s\n", correct, match)
		}
		fmt.Println()
	}
}

// Sensitivity: reproduce the Table-III methodology end to end — grid-search
// the Jaccard-Levenshtein threshold over ChEMBL-fabricated pairs and report
// how strongly recall reacts to the parameter, per pair and in aggregate.
//
//	go run ./examples/sensitivity
package main

import (
	"context"
	"fmt"
	"log"

	"valentine"
)

func main() {
	source := valentine.ChEMBL(valentine.DatasetOptions{Rows: 120, Seed: 5})
	pairs, err := valentine.FabricationGrid("chembl", source, 5)
	if err != nil {
		log.Fatal(err)
	}
	// A slice of the grid keeps the example fast: the two joinable flavors.
	var subset []valentine.TablePair
	for _, p := range pairs {
		if p.Scenario == valentine.ScenarioJoinable || p.Scenario == valentine.ScenarioSemJoinable {
			subset = append(subset, p)
		}
	}

	thresholds := []float64{0.4, 0.5, 0.6, 0.7, 0.8}
	grid := make(valentine.Grid, 0, len(thresholds))
	for _, th := range thresholds {
		grid = append(grid, valentine.Params{"threshold": th})
	}
	results, err := valentine.RunExperiments(context.Background(), valentine.ExperimentSpec{
		Registry: valentine.NewRegistry(),
		Grids:    map[string]valentine.Grid{valentine.MethodJaccardLev: grid},
		Methods:  []string{valentine.MethodJaccardLev},
		Pairs:    subset,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Per-pair std-dev of recall across the threshold sweep.
	perPair := map[string][]float64{}
	for _, r := range results {
		if r.Err != nil {
			log.Fatal(r.Err)
		}
		perPair[r.Pair] = append(perPair[r.Pair], r.Recall)
	}
	var stdevs []float64
	fmt.Printf("threshold sweep %v on %d ChEMBL joinable pairs:\n\n", thresholds, len(subset))
	for pair, recalls := range perPair {
		b := valentine.Box(recalls)
		stdevs = append(stdevs, b.StdDev)
		if b.StdDev > 0.1 {
			fmt.Printf("  sensitive pair %-55s recall %.2f–%.2f (σ=%.3f)\n",
				pair, b.Min, b.Max, b.StdDev)
		}
	}
	agg := valentine.Box(stdevs)
	fmt.Printf("\nTable-III style summary for jaccard-levenshtein/threshold:\n")
	fmt.Printf("  std-dev of recall: min=%.3f median=%.3f max=%.3f over %d pairs\n",
		agg.Min, agg.Median, agg.Max, agg.N)
	fmt.Println("\nPaper's observation: medians near zero (parameters often don't matter)")
	fmt.Println("but maxima near 0.5 (when overlap is low, thresholds matter a lot).")
}

// Serve: the live-catalog deployment shape end to end. A data lake is
// ingested into a DiscoveryIndex, served over HTTP (search, upsert, delete,
// stats), mutated while queries run, snapshotted to disk on shutdown, and
// resumed from the snapshot — all in one self-contained process using an
// ephemeral port.
//
//	go run ./examples/serve
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"

	"valentine"
)

func main() {
	// Build the lake: two fragments related to the query drowned in
	// unrelated tables.
	opts := valentine.DatasetOptions{Rows: 150, Seed: 3}
	fab := valentine.NewFabricator(11)
	prospect := valentine.TPCDI(opts)
	j1, err := fab.Joinable(prospect, 0.5, 1.0, false)
	if err != nil {
		log.Fatal(err)
	}
	query := j1.Source
	query.Name = "query_prospects"
	j1.Target.Name = "crm_extract"
	lake := []*valentine.Table{j1.Target}
	for i := 0; i < 4; i++ {
		o := valentine.DatasetOptions{Rows: 120, Seed: int64(20 + i)}
		civic := valentine.OpenData(o)
		civic.Name = fmt.Sprintf("civic_programs_%d", i)
		lake = append(lake, civic)
	}

	// TokenBoost breaks the perfect-value-overlap ties that low-cardinality
	// categorical columns (state, gender, ...) produce across unrelated
	// domains — same reasoning as examples/indexsearch.
	ix := valentine.NewDiscoveryIndex(valentine.DiscoveryOptions{TokenBoost: 0.15})
	for _, t := range lake {
		if err := ix.Add(t); err != nil {
			log.Fatal(err)
		}
	}

	// Join discovery keys on discriminative columns: project the query down
	// to columns where most values are distinct.
	var keys []string
	for _, c := range query.Columns {
		if len(c.Values) > 0 && len(c.DistinctValues())*2 >= len(c.Values) {
			keys = append(keys, c.Name)
		}
	}
	query, err = query.Project(keys...)
	if err != nil {
		log.Fatal(err)
	}
	query.Name = "query_prospects"

	// Serve it: per-request deadlines, micro-batched ingest, snapshot on
	// Close.
	snapDir, err := os.MkdirTemp("", "valentine-serve")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(snapDir)
	snap := filepath.Join(snapDir, "catalog")
	srv, err := valentine.NewServer(valentine.ServeOptions{Index: ix, SnapshotDir: snap})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	base := "http://" + ln.Addr().String()
	fmt.Printf("serving %d tables at %s\n\n", ix.NumTables(), base)

	// 1. Search while serving.
	results := search(base, query)
	fmt.Printf("top join candidates for %q:\n", query.Name)
	for i, r := range results {
		fmt.Printf("  %d. %-18s %.3f\n", i+1, r.Table, r.Score)
	}

	// 2. Mutate the live catalog over HTTP: upsert a fresh fragment,
	// remove a noise table. Searches keep running against consistent
	// epochs throughout.
	u1, err := fab.Unionable(prospect, 0.6, valentine.Variant{})
	if err != nil {
		log.Fatal(err)
	}
	u1.Target.Name = "prospects_archive"
	putTable(base, u1.Target)
	del(base, "civic_programs_0")
	fmt.Printf("\nafter upsert(prospects_archive) + delete(civic_programs_0):\n")
	for i, r := range search(base, query) {
		fmt.Printf("  %d. %-18s %.3f\n", i+1, r.Table, r.Score)
	}

	// 3. Catalog internals over /v1/stats: epochs, segments, tombstones.
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		log.Fatal(err)
	}
	var stats struct {
		Catalog valentine.DiscoveryStats `json:"catalog"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("\ncatalog: epoch=%d tables=%d sealed_segments=%d tombstones=%d\n",
		stats.Catalog.Epoch, stats.Catalog.Tables, stats.Catalog.SealedSegments, stats.Catalog.Tombstones)

	// 4. Graceful shutdown: drain, flush ingest, final snapshot — then
	// resume the catalog from disk.
	hs.Close()
	if err := srv.Close(); err != nil {
		log.Fatal(err)
	}
	resumed, err := valentine.LoadDiscoverySnapshot(snap)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("resumed from snapshot: %d tables, epoch %d (live mutations preserved)\n",
		resumed.NumTables(), resumed.Stats().Epoch)
}

func search(base string, q *valentine.Table) []valentine.DiscoveryResult {
	body, err := json.Marshal(map[string]any{"table": wire(q), "mode": "join", "k": 3})
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/search", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var sr struct {
		Results []valentine.DiscoveryResult `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		log.Fatal(err)
	}
	return sr.Results
}

func putTable(base string, t *valentine.Table) {
	body, err := json.Marshal(wire(t))
	if err != nil {
		log.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPut, base+"/v1/tables/"+t.Name, bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("upsert %s: status %d", t.Name, resp.StatusCode)
	}
}

func del(base, name string) {
	req, err := http.NewRequest(http.MethodDelete, base+"/v1/tables/"+name, nil)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("delete %s: status %d", name, resp.StatusCode)
	}
}

// wire converts a table to the server's JSON shape.
func wire(t *valentine.Table) map[string]any {
	cols := make([]map[string]any, 0, len(t.Columns))
	for _, c := range t.Columns {
		cols = append(cols, map[string]any{"name": c.Name, "values": c.Values})
	}
	return map[string]any{"name": t.Name, "columns": cols}
}

package valentine

// The benchmark harness: one benchmark per table and figure of the paper's
// evaluation section, each regenerating the corresponding series at reduced
// scale and reporting headline numbers as custom benchmark metrics.
// cmd/benchreport prints the same series as formatted text at any scale.

import (
	"context"
	"sort"
	"testing"
	"time"

	"valentine/internal/core"
	"valentine/internal/datagen"
	"valentine/internal/emd"
	"valentine/internal/experiment"
	"valentine/internal/fabrication"
	"valentine/internal/graph"
	"valentine/internal/metrics"
	"valentine/internal/report"
)

// benchCfg is the reduced scale every benchmark runs at; raise Rows/Seeds
// (or use cmd/benchreport -rows N) for paper-scale runs.
func benchCfg() report.Config {
	return report.Config{Rows: 60, Seeds: 1, Sources: []string{"TPC-DI"}}
}

func reportScenarioMedians(b *testing.B, rs []experiment.Result, methods []string, keep func(experiment.Result) bool) {
	b.Helper()
	var all []float64
	for _, m := range methods {
		for _, box := range experiment.BoxByScenario(rs, m, keep) {
			all = append(all, box.Median)
		}
	}
	if len(all) > 0 {
		b.ReportMetric(metrics.Box(all).Median, "median_recall")
	}
}

// BenchmarkTableICapabilities regenerates Table I (capability matrix).
func BenchmarkTableICapabilities(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if out := report.TableI(); len(out) == 0 {
			b.Fatal("empty Table I")
		}
	}
}

// BenchmarkTableIIGrids regenerates Table II (the 135-configuration grid).
func BenchmarkTableIIGrids(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if n := experiment.TotalConfigurations(experiment.DefaultGrids()); n != 135 {
			b.Fatalf("grid = %d configurations, want 135", n)
		}
	}
}

// BenchmarkTableIIISensitivity regenerates Table III: the ceteris-paribus
// sensitivity grid search on ChEMBL-fabricated pairs.
func BenchmarkTableIIISensitivity(b *testing.B) {
	cfg := report.Config{Rows: 40}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := report.RunTableIII(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 7 {
			b.Fatalf("Table III rows = %d, want 7", len(rows))
		}
		if i == 0 {
			var maxes []float64
			for _, r := range rows {
				maxes = append(maxes, r.Stats.Max)
			}
			b.ReportMetric(metrics.Box(maxes).Max, "max_stddev")
		}
	}
}

// BenchmarkFigure4SchemaBased regenerates Figure 4: schema-based methods on
// fabricated pairs with noisy schemata.
func BenchmarkFigure4SchemaBased(b *testing.B) {
	cfg := benchCfg()
	cfg.Methods = experiment.SchemaBasedMethods()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs, err := report.RunFabricated(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportScenarioMedians(b, rs, cfg.Methods, report.NoisySchemata)
		}
	}
}

// BenchmarkFigure5InstanceBased regenerates Figure 5: instance-based
// methods, split by noisy vs verbatim instances.
func BenchmarkFigure5InstanceBased(b *testing.B) {
	cfg := benchCfg()
	cfg.Methods = experiment.InstanceBasedMethods()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs, err := report.RunFabricated(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportScenarioMedians(b, rs, cfg.Methods, report.VerbatimInstances)
		}
	}
}

// BenchmarkFigure6Hybrid regenerates Figure 6: the hybrid methods EmbDI and
// SemProp.
func BenchmarkFigure6Hybrid(b *testing.B) {
	cfg := benchCfg()
	cfg.Rows = 40 // EmbDI trains embeddings per pair; keep iterations cheap
	cfg.Methods = experiment.HybridMethods()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs, err := report.RunFabricated(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportScenarioMedians(b, rs, cfg.Methods, nil)
		}
	}
}

// BenchmarkFigure7WikiData regenerates Figure 7: all methods on the curated
// WikiData pairs.
func BenchmarkFigure7WikiData(b *testing.B) {
	cfg := report.Config{Rows: 40}
	pairs := datagen.WikiData(datagen.Options{Rows: 40})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs, err := report.RunCurated(context.Background(), cfg, pairs)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var instance, schema []float64
			for _, r := range rs {
				if r.Err != nil {
					b.Fatalf("%s: %v", r.Method, r.Err)
				}
				switch r.Method {
				case experiment.MethodDistribution, experiment.MethodJaccardLev, experiment.MethodComaInstance:
					instance = append(instance, r.Recall)
				case experiment.MethodCupid, experiment.MethodSimFlood, experiment.MethodComaSchema:
					schema = append(schema, r.Recall)
				}
			}
			b.ReportMetric(metrics.Box(instance).Mean, "instance_mean_recall")
			b.ReportMetric(metrics.Box(schema).Mean, "schema_mean_recall")
		}
	}
}

// BenchmarkTableIVCurated regenerates Table IV: Magellan and ING results.
func BenchmarkTableIVCurated(b *testing.B) {
	cfg := report.Config{Rows: 40}
	magPairs := datagen.Magellan(datagen.Options{Rows: 40})
	ingPairs := []core.TablePair{
		datagen.ING1(datagen.Options{Rows: 30}),
		datagen.ING2(datagen.Options{Rows: 30}),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mag, err := report.RunCurated(context.Background(), cfg, magPairs)
		if err != nil {
			b.Fatal(err)
		}
		ing, err := report.RunCurated(context.Background(), cfg, ingPairs)
		if err != nil {
			b.Fatal(err)
		}
		rows := report.TableIV(mag, ing)
		if i == 0 {
			for _, r := range rows {
				if r.Method == experiment.MethodDistribution {
					b.ReportMetric(r.ING2, "distribution_ing2_recall")
				}
				if r.Method == experiment.MethodComaSchema {
					b.ReportMetric(r.Magellan, "coma_magellan_recall")
				}
			}
		}
	}
}

// BenchmarkTableVRuntime regenerates Table V: average per-pair runtime of
// every method over a common fabricated workload.
func BenchmarkTableVRuntime(b *testing.B) {
	cfg := benchCfg()
	cfg.Rows = 40
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs, err := report.RunFabricated(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			avg := experiment.AverageRuntime(rs)
			b.ReportMetric(float64(avg[experiment.MethodComaSchema].Microseconds()), "coma_schema_us")
			b.ReportMetric(float64(avg[experiment.MethodEmbDI].Microseconds()), "embdi_us")
		}
	}
}

// --- per-method microbenchmarks (Table V at a fixed joinable pair) ---

func benchPair(b *testing.B) core.TablePair {
	b.Helper()
	src := datagen.TPCDI(datagen.Options{Rows: 80, Seed: 2})
	pair, err := fabrication.New(4).Joinable(src, 0.5, 1.0, false)
	if err != nil {
		b.Fatal(err)
	}
	return pair
}

// BenchmarkMatcher measures each method once on a standard joinable pair.
func BenchmarkMatcher(b *testing.B) {
	pair := benchPair(b)
	reg := experiment.NewRegistry()
	grids := experiment.QuickGrids()
	for _, method := range experiment.MethodNames() {
		b.Run(method, func(b *testing.B) {
			m, err := reg.New(method, grids[method][0])
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := m.Match(pair.Source, pair.Target); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- ablation benches for DESIGN.md §5 design choices ---

// BenchmarkAblationEMD compares the exact 1-D closed form against the
// quantile-histogram approximation the phase-1 pass uses.
func BenchmarkAblationEMD(b *testing.B) {
	xs := make([]float64, 2000)
	ys := make([]float64, 2000)
	for i := range xs {
		xs[i] = float64(i%977) / 977
		ys[i] = float64((i*31)%991) / 991
	}
	b.Run("exact-1d", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			emd.Samples1D(xs, ys)
		}
	})
	b.Run("quantile-20", func(b *testing.B) {
		q := 20
		qx := quantileOf(xs, q)
		qy := quantileOf(ys, q)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			emd.Samples1D(qx, qy)
		}
	})
}

func quantileOf(xs []float64, q int) []float64 {
	out := make([]float64, q)
	for i := range out {
		out[i] = xs[i*len(xs)/q]
	}
	return out
}

// BenchmarkAblationSFFormula compares the Similarity Flooding fixpoint
// formulas (Table II fixes C; this quantifies the alternatives).
func BenchmarkAblationSFFormula(b *testing.B) {
	pair := benchPair(b)
	for _, f := range []string{"basic", "A", "B", "C"} {
		b.Run("formula-"+f, func(b *testing.B) {
			m, err := NewMatcher(MethodSimFlood, Params{"formula": f})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var recall float64
			for i := 0; i < b.N; i++ {
				ms, err := m.Match(pair.Source, pair.Target)
				if err != nil {
					b.Fatal(err)
				}
				recall, err = RecallAtGT(ms, pair.Truth)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(recall, "recall")
		})
	}
}

// BenchmarkAblationEmbDIDims varies EmbDI's embedding dimensionality,
// trading training cost against ranking quality.
func BenchmarkAblationEmbDIDims(b *testing.B) {
	pair := benchPair(b)
	for _, dims := range []int{16, 48, 128} {
		b.Run(dimName(dims), func(b *testing.B) {
			m, err := NewMatcher(MethodEmbDI, Params{"n_dimensions": dims})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var recall float64
			for i := 0; i < b.N; i++ {
				ms, err := m.Match(pair.Source, pair.Target)
				if err != nil {
					b.Fatal(err)
				}
				recall, err = RecallAtGT(ms, pair.Truth)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(recall, "recall")
		})
	}
}

func dimName(d int) string {
	switch d {
	case 16:
		return "dims-16"
	case 48:
		return "dims-48"
	default:
		return "dims-128"
	}
}

// BenchmarkAblationComaLibrary compares COMA's full matcher library against
// the pure name matcher (approximated by Cupid with zero structural weight
// and no thesaurus effect removed — the library-vs-single contrast the
// DESIGN.md ablation list calls out).
func BenchmarkAblationComaLibrary(b *testing.B) {
	src := datagen.TPCDI(datagen.Options{Rows: 60, Seed: 2})
	pair, err := fabrication.New(4).Unionable(src, 0.5, fabrication.Variant{NoisySchema: true})
	if err != nil {
		b.Fatal(err)
	}
	for _, strat := range []string{"schema", "instance"} {
		b.Run("strategy-"+strat, func(b *testing.B) {
			m, err := NewMatcher(MethodComaSchema, Params{"strategy": strat})
			if err != nil {
				b.Fatal(err)
			}
			if strat == "instance" {
				m, err = NewMatcher(MethodComaInstance, nil)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			var recall float64
			for i := 0; i < b.N; i++ {
				ms, err := m.Match(pair.Source, pair.Target)
				if err != nil {
					b.Fatal(err)
				}
				recall, err = RecallAtGT(ms, pair.Truth)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(recall, "recall")
		})
	}
}

// BenchmarkAblationExactVsLSH compares the exact Jaccard-Levenshtein
// baseline against the approximate MinHash-LSH matcher on high-cardinality
// columns — the §IX scaling lesson quantified.
func BenchmarkAblationExactVsLSH(b *testing.B) {
	src := datagen.OpenData(datagen.Options{Rows: 300, Seed: 6})
	pair, err := fabrication.New(8).Joinable(src, 0.5, 1.0, false)
	if err != nil {
		b.Fatal(err)
	}
	for _, method := range []string{MethodJaccardLev, MethodLSH} {
		b.Run(method, func(b *testing.B) {
			m, err := NewMatcher(method, nil)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var recall float64
			for i := 0; i < b.N; i++ {
				ms, err := m.Match(pair.Source, pair.Target)
				if err != nil {
					b.Fatal(err)
				}
				recall, err = RecallAtGT(ms, pair.Truth)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(recall, "recall")
		})
	}
}

// BenchmarkAblationEnsembleFusion compares score fusion against RRF on a
// noisy pair — the composition lesson quantified.
func BenchmarkAblationEnsembleFusion(b *testing.B) {
	src := datagen.TPCDI(datagen.Options{Rows: 60, Seed: 2})
	pair, err := fabrication.New(4).SemanticallyJoinable(src, 0.5, 1.0, true)
	if err != nil {
		b.Fatal(err)
	}
	members := []string{MethodComaSchema, MethodDistribution, MethodJaccardLev}
	for _, fusion := range []string{"score", "rrf"} {
		b.Run("fusion-"+fusion, func(b *testing.B) {
			e, err := NewEnsemble(members, Params{"fusion": fusion})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var recall float64
			for i := 0; i < b.N; i++ {
				ms, err := e.Match(pair.Source, pair.Target)
				if err != nil {
					b.Fatal(err)
				}
				recall, err = RecallAtGT(ms, pair.Truth)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(recall, "recall")
		})
	}
}

// --- discovery-index benches (served top-k search vs brute-force discover) ---

// discoveryBenchCorpus fabricates a ≥100-table data lake: eight fragments
// genuinely related to the query drowned in unrelated tables from the other
// two domains.
func discoveryBenchCorpus(b *testing.B) (query *Table, corpus []*Table) {
	b.Helper()
	base := datagen.TPCDI(datagen.Options{Rows: 100, Seed: 2})
	for i := 0; i < 8; i++ {
		pair, err := fabrication.New(int64(10+i)).Joinable(base, 0.5, 0.9, false)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			query = pair.Source
			query.Name = "query"
		}
		pair.Target.Name = dimNameIdx("related", i)
		corpus = append(corpus, pair.Target)
	}
	for i := 0; i < 92; i++ {
		opts := datagen.Options{Rows: 100, Seed: int64(100 + i)}
		var t *Table
		if i%2 == 0 {
			t = datagen.OpenData(opts)
		} else {
			t = datagen.ChEMBL(opts)
		}
		t.Name = dimNameIdx("lake", i)
		corpus = append(corpus, t)
	}
	return query, corpus
}

func dimNameIdx(prefix string, i int) string {
	return prefix + "_" + string(rune('a'+i/26)) + string(rune('a'+i%26))
}

// bruteDiscoverTopK is the pre-index discover path: run the pairwise LSH
// matcher against every corpus table and rank by best correspondence.
func bruteDiscoverTopK(b *testing.B, m Matcher, query *Table, corpus []*Table, k int) []string {
	b.Helper()
	type cand struct {
		name  string
		score float64
	}
	ranked := make([]cand, 0, len(corpus))
	for _, t := range corpus {
		matches, err := m.Match(query, t)
		if err != nil {
			b.Fatal(err)
		}
		score := 0.0
		if len(matches) > 0 {
			score = matches[0].Score
		}
		ranked = append(ranked, cand{t.Name, score})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].score != ranked[j].score {
			return ranked[i].score > ranked[j].score
		}
		return ranked[i].name < ranked[j].name
	})
	names := make([]string, k)
	for i := range names {
		names[i] = ranked[i].name
	}
	return names
}

// BenchmarkIndexedDiscovery measures a served top-k join query against a
// pre-built index over the ≥100-table corpus, verifies the indexed top-k
// equals brute-force discover's, and reports the speedup as a metric.
func BenchmarkIndexedDiscovery(b *testing.B) {
	query, corpus := discoveryBenchCorpus(b)
	ix := NewDiscoveryIndex(DiscoveryOptions{})
	for _, t := range corpus {
		if err := ix.Add(t); err != nil {
			b.Fatal(err)
		}
	}
	m, err := NewMatcher(MethodLSH, nil)
	if err != nil {
		b.Fatal(err)
	}
	const k = 5
	bruteStart := time.Now()
	bruteTop := bruteDiscoverTopK(b, m, query, corpus, k)
	bruteDur := time.Since(bruteStart)
	res, err := ix.Search(query, DiscoverJoin, k)
	if err != nil {
		b.Fatal(err)
	}
	if len(res) != k {
		b.Fatalf("indexed search returned %d results, want %d", len(res), k)
	}
	for i, r := range res {
		if r.Table != bruteTop[i] {
			b.Fatalf("indexed top-%d = %v..., brute-force = %v", k, r.Table, bruteTop[i])
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ix.Search(query, DiscoverJoin, k); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if b.N > 0 && b.Elapsed() > 0 {
		perQuery := b.Elapsed() / time.Duration(b.N)
		b.ReportMetric(float64(bruteDur)/float64(perQuery), "speedup")
	}
}

// BenchmarkBruteForceDiscovery measures the old discover path on the same
// corpus: a full pairwise matcher run per table, per query.
func BenchmarkBruteForceDiscovery(b *testing.B) {
	query, corpus := discoveryBenchCorpus(b)
	m, err := NewMatcher(MethodLSH, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bruteDiscoverTopK(b, m, query, corpus, 5)
	}
}

// BenchmarkIndexIngest measures one-time ingestion cost of the corpus.
func BenchmarkIndexIngest(b *testing.B) {
	_, corpus := discoveryBenchCorpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix := NewDiscoveryIndex(DiscoveryOptions{})
		for _, t := range corpus {
			if err := ix.Add(t); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- profile-layer benches (shared lazy column profiles vs re-derivation) ---

// profiledEnsembleMethods are instance methods whose per-column derived
// data (distinct sets, sorted values, statistics, signatures) is a material
// share of their runtime — the share the profile layer deduplicates.
// (Methods dominated by pair-local work — EMD, fuzzy edit distance,
// embedding training — gain little from profile sharing and would only
// blur the measurement.)
var profiledEnsembleMethods = []string{MethodComaInstance, MethodLSH}

func profiledEnsembleMembers(b *testing.B) []Matcher {
	b.Helper()
	out := make([]Matcher, 0, len(profiledEnsembleMethods))
	for _, name := range profiledEnsembleMethods {
		m, err := NewMatcher(name, nil)
		if err != nil {
			b.Fatal(err)
		}
		out = append(out, m)
	}
	return out
}

// profiledEnsemblePair is a high-cardinality joinable pair: derived column
// data (sorting distinct sets, MinHash signatures, statistics) is a
// material share of each member's cost, which is what the profile layer
// deduplicates.
func profiledEnsemblePair(b *testing.B) core.TablePair {
	b.Helper()
	src := datagen.OpenData(datagen.Options{Rows: 2000, Seed: 6})
	pair, err := fabrication.New(8).Joinable(src, 0.5, 1.0, false)
	if err != nil {
		b.Fatal(err)
	}
	return pair
}

// BenchmarkEnsemblePerMemberProfiling is the pre-profile-layer baseline:
// every member re-derives the pair's column data itself, as ensemble.Match
// did before the shared profile landed.
func BenchmarkEnsemblePerMemberProfiling(b *testing.B) {
	pair := profiledEnsemblePair(b)
	members := profiledEnsembleMembers(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, m := range members {
			if _, err := m.Match(pair.Source, pair.Target); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkEnsembleSharedProfiles profiles the pair once per iteration and
// shares it across all members — the new ensemble.Match behaviour.
func BenchmarkEnsembleSharedProfiles(b *testing.B) {
	pair := profiledEnsemblePair(b)
	e, err := NewEnsemble(profiledEnsembleMethods, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Match(pair.Source, pair.Target); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEnsembleWarmStore is the served repeated-query path: the pair's
// profiles live in a warmed store, so iterations only pay for matching.
func BenchmarkEnsembleWarmStore(b *testing.B) {
	pair := profiledEnsemblePair(b)
	e, err := NewEnsemble(profiledEnsembleMethods, nil)
	if err != nil {
		b.Fatal(err)
	}
	store := NewProfileStore()
	store.Warm(pair.Source, pair.Target)
	sp, tp := store.Of(pair.Source), store.Of(pair.Target)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MatchWithProfiles(e, sp, tp); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDiscoverRescoreColdProfiles is discover's re-scoring phase
// before the profile layer: every corpus table — and the query, every time
// — is re-profiled inside each Match call.
func BenchmarkDiscoverRescoreColdProfiles(b *testing.B) {
	query, corpus := discoveryBenchCorpus(b)
	m, err := NewMatcher(MethodLSH, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, t := range corpus {
			if _, err := m.Match(query, t); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkDiscoverRescoreWarmStore is the same re-scoring sweep through a
// warmed profile store — what repeated `valentine discover` queries against
// a standing corpus cost now.
func BenchmarkDiscoverRescoreWarmStore(b *testing.B) {
	query, corpus := discoveryBenchCorpus(b)
	m, err := NewMatcher(MethodLSH, nil)
	if err != nil {
		b.Fatal(err)
	}
	store := NewProfileStore()
	store.Warm(append(append([]*Table{}, corpus...), query)...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, t := range corpus {
			if _, err := MatchWithProfiles(m, store.Of(query), store.Of(t)); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkProfileWarm measures the one-time parallel warm pass itself.
func BenchmarkProfileWarm(b *testing.B) {
	_, corpus := discoveryBenchCorpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		store := NewProfileStore()
		store.Warm(corpus...)
	}
}

// --- engine benches (parallel vs sequential execution of one workload) ---

// engineEnsembleMethods are the heavyweight members used to measure the
// engine's member-level fan-out: instance methods whose scoring dominates
// their runtime, so the parallel/sequential contrast is about execution, not
// profiling (the store is pre-warmed in both arms).
var engineEnsembleMethods = []string{
	MethodComaInstance, MethodDistribution, MethodJaccardLev, MethodLSH,
}

func engineBenchEnsemble(b *testing.B) (Matcher, *TableProfile, *TableProfile) {
	b.Helper()
	src := datagen.OpenData(datagen.Options{Rows: 1500, Seed: 6})
	pair, err := fabrication.New(8).Joinable(src, 0.5, 1.0, false)
	if err != nil {
		b.Fatal(err)
	}
	e, err := NewEnsemble(engineEnsembleMethods, nil)
	if err != nil {
		b.Fatal(err)
	}
	store := NewProfileStore()
	store.Warm(pair.Source, pair.Target)
	return e, store.Of(pair.Source), store.Of(pair.Target)
}

func benchEngineEnsemble(b *testing.B, parallelism int) {
	e, sp, tp := engineBenchEnsemble(b)
	ctx := WithEngineOptions(context.Background(), EngineOptions{Parallelism: parallelism})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MatchProfilesWithContext(ctx, e, sp, tp); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineEnsembleSequential pins the engine to one worker — the
// pre-engine member-at-a-time loop, executed inline.
func BenchmarkEngineEnsembleSequential(b *testing.B) { benchEngineEnsemble(b, 1) }

// BenchmarkEngineEnsembleParallel fans ensemble members (and each member's
// row scoring) out at GOMAXPROCS. Same scores, bit-identical ranking; the
// wall-clock ratio to the Sequential bench is the engine's speedup on this
// hardware.
func BenchmarkEngineEnsembleParallel(b *testing.B) { benchEngineEnsemble(b, 0) }

func engineBenchSpec(b *testing.B, workers int) experiment.Spec {
	b.Helper()
	src := datagen.TPCDI(datagen.Options{Rows: 40, Seed: 2})
	pairs, err := fabrication.GridSeeds(fabrication.SourceTable{Name: "TPC-DI", Table: src}, 1, 1)
	if err != nil {
		b.Fatal(err)
	}
	return experiment.Spec{
		Registry: experiment.NewRegistry(),
		Grids:    experiment.QuickGrids(),
		Methods:  []string{MethodComaSchema, MethodComaInstance, MethodDistribution, MethodJaccardLev},
		Pairs:    pairs,
		Workers:  workers,
	}
}

func benchEngineExperiment(b *testing.B, workers int) {
	spec := engineBenchSpec(b, workers)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Run(context.Background(), spec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineExperimentGridSequential runs the grid on one engine
// worker.
func BenchmarkEngineExperimentGridSequential(b *testing.B) { benchEngineExperiment(b, 1) }

// BenchmarkEngineExperimentGridParallel dispatches grid rows in parallel on
// the engine pool (GOMAXPROCS workers) — results identical to Sequential's.
func BenchmarkEngineExperimentGridParallel(b *testing.B) { benchEngineExperiment(b, 0) }

// BenchmarkFlooding isolates the PCG construction + fixpoint machinery.
func BenchmarkFlooding(b *testing.B) {
	g := graph.New()
	for i := 0; i < 30; i++ {
		g.AddEdge("root", "column", nodeID(i))
		g.AddEdge(nodeID(i), "type", "string")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pcg := graph.BuildPCG(g, g)
		pcg.Flood(nil, 1, graph.FloodOptions{Formula: graph.FormulaC})
	}
}

func nodeID(i int) string {
	return "c" + string(rune('a'+i%26)) + string(rune('a'+i/26))
}

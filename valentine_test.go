package valentine

import (
	"context"
	"os"
	"path/filepath"
	"testing"
)

func TestPublicAPIEndToEnd(t *testing.T) {
	src := TPCDI(DatasetOptions{Rows: 60})
	f := NewFabricator(5)
	pair, err := f.Unionable(src, 0.5, Variant{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMatcher(MethodComaSchema, nil)
	if err != nil {
		t.Fatal(err)
	}
	matches, err := m.Match(pair.Source, pair.Target)
	if err != nil {
		t.Fatal(err)
	}
	r, err := RecallAtGT(matches, pair.Truth)
	if err != nil {
		t.Fatal(err)
	}
	if r < 0.99 {
		t.Fatalf("verbatim unionable recall = %v", r)
	}
}

func TestMethodsComplete(t *testing.T) {
	ms := Methods()
	if len(ms) != 8 {
		t.Fatalf("Methods = %v", ms)
	}
	for _, name := range ms {
		if _, err := NewMatcher(name, nil); err != nil {
			t.Errorf("NewMatcher(%s): %v", name, err)
		}
	}
	if _, err := NewMatcher("ghost", nil); err == nil {
		t.Error("unknown method should fail")
	}
}

func TestCSVRoundTripThroughAPI(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "clients.csv")
	if err := os.WriteFile(path, []byte("name,po\nA,1\nB,2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	tab, err := ReadCSVFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Name != "clients" || tab.NumColumns() != 2 || tab.NumRows() != 2 {
		t.Fatalf("loaded table = %v", tab)
	}
}

func TestRunExperimentsThroughAPI(t *testing.T) {
	pair, err := NewFabricator(9).Joinable(ChEMBL(DatasetOptions{Rows: 50}), 0.5, 1.0, false)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := RunExperiments(context.Background(), ExperimentSpec{
		Registry: NewRegistry(),
		Grids:    QuickGrids(),
		Methods:  []string{MethodJaccardLev},
		Pairs:    []TablePair{pair},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 || rs[0].Err != nil {
		t.Fatalf("results = %+v", rs)
	}
}

func TestDatasetAccessors(t *testing.T) {
	if len(WikiDataPairs(DatasetOptions{Rows: 40})) != 4 {
		t.Error("WikiDataPairs")
	}
	if len(MagellanPairs(DatasetOptions{Rows: 40})) != 7 {
		t.Error("MagellanPairs")
	}
	if ING1(DatasetOptions{Rows: 40}).Truth.Size() != 14 {
		t.Error("ING1")
	}
	if ING2(DatasetOptions{Rows: 40}).Truth.Size() == 0 {
		t.Error("ING2")
	}
	if OpenData(DatasetOptions{Rows: 20}).NumColumns() < 26 {
		t.Error("OpenData")
	}
}

func TestFabricationGridThroughAPI(t *testing.T) {
	pairs, err := FabricationGrid("tpcdi", TPCDI(DatasetOptions{Rows: 40}), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 56 {
		t.Fatalf("grid = %d pairs", len(pairs))
	}
	if len(AllVariants()) != 4 {
		t.Error("AllVariants")
	}
	if TotalGrid := len(DefaultGrids()); TotalGrid != 8 {
		t.Errorf("DefaultGrids methods = %d", TotalGrid)
	}
	b := Box([]float64{0, 1})
	if b.Median != 0.5 {
		t.Error("Box")
	}
}

package valentine

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
)

func TestEnsembleThroughAPI(t *testing.T) {
	pair, err := NewFabricator(3).Joinable(TPCDI(DatasetOptions{Rows: 60}), 0.5, 1.0, true)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEnsemble([]string{MethodComaSchema, MethodDistribution}, Params{"fusion": "rrf"})
	if err != nil {
		t.Fatal(err)
	}
	ms, err := e.Match(pair.Source, pair.Target)
	if err != nil {
		t.Fatal(err)
	}
	r, err := RecallAtGT(ms, pair.Truth)
	if err != nil {
		t.Fatal(err)
	}
	if r < 0.5 {
		t.Fatalf("ensemble recall = %v", r)
	}
	if _, err := NewEnsemble(nil, nil); err == nil {
		t.Error("empty ensemble should fail")
	}
	if _, err := NewEnsemble([]string{"ghost"}, nil); err == nil {
		t.Error("unknown member should fail")
	}
}

func TestLSHThroughAPI(t *testing.T) {
	m, err := NewMatcher(MethodLSH, nil)
	if err != nil {
		t.Fatal(err)
	}
	pair, err := NewFabricator(5).Joinable(TPCDI(DatasetOptions{Rows: 60}), 0.5, 1.0, false)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := m.Match(pair.Source, pair.Target)
	if err != nil {
		t.Fatal(err)
	}
	r, err := RecallAtGT(ms, pair.Truth)
	if err != nil {
		t.Fatal(err)
	}
	if r < 0.9 {
		t.Fatalf("LSH on verbatim joinable = %v", r)
	}
}

// TestLiveCatalogThroughAPI exercises the serving surface end to end via
// the public API: live mutation, batch apply, stats, snapshot persistence,
// and the HTTP server.
func TestLiveCatalogThroughAPI(t *testing.T) {
	mk := func(name, prefix string) *Table {
		vals := make([]string, 50)
		for i := range vals {
			vals[i] = prefix + string(rune('a'+i%26)) + string(rune('a'+i/26))
		}
		return NewTable(name).AddColumn("k", vals)
	}
	ix := NewDiscoveryIndex(DiscoveryOptions{SealAfter: 2})
	if err := ix.Add(mk("orders", "c")); err != nil {
		t.Fatal(err)
	}
	if err := ix.Upsert(mk("geo", "t")); err != nil {
		t.Fatal(err)
	}
	if err := ix.Add(mk("noise", "z")); err != nil {
		t.Fatal(err)
	}
	if err := ix.Remove("noise"); err != nil {
		t.Fatal(err)
	}
	errs := ix.Apply([]DiscoveryOp{
		{Upsert: ProfileTable(mk("batchA", "c"))},
		{Remove: "geo"},
	})
	for i, err := range errs {
		if err != nil {
			t.Fatalf("apply op %d: %v", i, err)
		}
	}
	res, err := ix.Search(mk("query", "c"), DiscoverJoin, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 { // orders + batchA; geo and noise removed
		t.Fatalf("results = %+v", res)
	}
	st := ix.Stats()
	if st.Tables != 2 || st.Epoch == 0 {
		t.Fatalf("stats = %+v", st)
	}

	// Snapshot round trip through the public helpers.
	dir := filepath.Join(t.TempDir(), "snap")
	if err := ix.SaveSnapshot(dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadDiscoverySnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(loaded.Tables(), ","); got != "batchA,orders" {
		t.Fatalf("snapshot tables = %s", got)
	}
	viaFile, err := LoadDiscoveryIndexFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	if viaFile.NumTables() != 2 {
		t.Fatalf("LoadDiscoveryIndexFile(dir) tables = %d", viaFile.NumTables())
	}

	// HTTP layer over the same catalog.
	srv, err := NewServer(ServeOptions{Index: ix})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		if err := srv.Close(); err != nil {
			t.Error(err)
		}
	}()
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Catalog DiscoveryStats `json:"catalog"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Catalog.Tables != 2 {
		t.Fatalf("served stats = %+v", stats.Catalog)
	}
}

func TestFeedbackThroughAPI(t *testing.T) {
	s := NewFeedbackSession()
	ms := []Match{
		{SourceColumn: "a", TargetColumn: "x", Score: 0.4},
		{SourceColumn: "b", TargetColumn: "y", Score: 0.9},
	}
	s.Confirm("a", "x")
	out := s.Rerank(ms)
	if out[0].SourceColumn != "a" {
		t.Fatal("confirmed pair should lead")
	}
	gt := NewGroundTruthFromPairs([][2]string{{"a", "x"}, {"b", "y"}})
	traj, err := SimulateFeedback(ms, gt, 5)
	if err != nil {
		t.Fatal(err)
	}
	if traj[len(traj)-1] != 1 {
		t.Fatalf("trajectory = %v", traj)
	}
}

func TestRankMetricsThroughAPI(t *testing.T) {
	gt := NewGroundTruthFromPairs([][2]string{{"a", "x"}})
	ms := []Match{{SourceColumn: "a", TargetColumn: "x", Score: 1}}
	if p, err := PrecisionAtK(ms, gt, 1); err != nil || p != 1 {
		t.Errorf("P@1 = %v, %v", p, err)
	}
	if r, err := RecallAtK(ms, gt, 1); err != nil || r != 1 {
		t.Errorf("R@1 = %v, %v", r, err)
	}
	if n, err := NDCGAtK(ms, gt, 1); err != nil || n != 1 {
		t.Errorf("NDCG = %v, %v", n, err)
	}
	if ap, err := AveragePrecision(ms, gt); err != nil || ap != 1 {
		t.Errorf("AP = %v, %v", ap, err)
	}
	if c, err := RecallCurve(ms, gt, 2); err != nil || c[1] != 1 {
		t.Errorf("curve = %v, %v", c, err)
	}
}

func TestResultsCSVThroughAPI(t *testing.T) {
	rs := []ExperimentResult{{Method: MethodComaSchema, Pair: "p", Recall: 0.5}}
	var buf bytes.Buffer
	if err := WriteResultsCSV(&buf, rs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadResultsCSV(&buf)
	if err != nil || len(back) != 1 || back[0].Recall != 0.5 {
		t.Fatalf("round trip = %+v, %v", back, err)
	}
}

func TestPairPersistenceThroughAPI(t *testing.T) {
	pair, err := NewFabricator(3).Unionable(TPCDI(DatasetOptions{Rows: 30}), 0.5, Variant{})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := SavePair(dir, pair); err != nil {
		t.Fatal(err)
	}
	back, err := LoadPair(dir)
	if err != nil {
		t.Fatal(err)
	}
	if back.Truth.Size() != pair.Truth.Size() {
		t.Fatal("GT size changed across save/load")
	}
}

func TestJoinUnionThroughAPI(t *testing.T) {
	a := &Table{Name: "a"}
	a.AddColumn("k", []string{"x", "y"})
	a.AddColumn("v", []string{"1", "2"})
	b := &Table{Name: "b"}
	b.AddColumn("kk", []string{"y", "z"})
	b.AddColumn("w", []string{"9", "8"})
	j, err := JoinTables(a, b, "k", "kk")
	if err != nil || j.NumRows() != 1 {
		t.Fatalf("join = %v, %v", j, err)
	}
	u, err := UnionTables(a, b, map[string]string{"k": "kk", "v": "w"})
	if err != nil || u.NumRows() != 4 {
		t.Fatalf("union = %v, %v", u, err)
	}
}

// NewGroundTruthFromPairs is a test helper building a GroundTruth from raw
// pairs through the public API surface.
func NewGroundTruthFromPairs(pairs [][2]string) *GroundTruth {
	gt := &GroundTruth{}
	for _, p := range pairs {
		gt.Add(p[0], p[1])
	}
	return gt
}
